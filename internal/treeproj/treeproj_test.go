package treeproj

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/qualgraph"
	"gyokit/internal/schema"
)

func parse(t *testing.T, u *schema.Universe, s string) *schema.Schema {
	t.Helper()
	d, err := schema.Parse(u, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSection32Example reproduces the §3.2 worked example:
// D the 8-ring, D″ = (ab, abch, cdgh, defg, ef) a tree projection of
// D′ = (abef, abch, cdgh, defg, ef) wrt D; D and D′ both cyclic.
func TestSection32Example(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, cd, de, ef, fg, gh, ha")
	dpp := parse(t, u, "ab, abch, cdgh, defg, ef")
	dp := parse(t, u, "abef, abch, cdgh, defg, ef")

	if !d.LE(dpp) || !dpp.LE(dp) {
		t.Fatal("D ≤ D″ ≤ D′ violated")
	}
	if !gyo.IsTree(dpp) {
		t.Fatal("D″ should be a tree schema")
	}
	if gyo.IsTree(d) || gyo.IsTree(dp) {
		t.Fatal("D and D′ should be cyclic")
	}
	if !IsTreeProjection(dpp, dp, d) {
		t.Error("D″ ∈ TP(D′, D) rejected")
	}
	// The figure's qual tree: ab—abch—cdgh—defg—ef.
	tr, ok := qualgraph.QualTree(dpp)
	if !ok {
		t.Fatal("no qual tree for D″")
	}
	if !tr.IsTree() {
		t.Fatal("qual graph is not a tree")
	}
	// And the search must find some tree projection within the pool.
	res := Exists(dp, d)
	if !res.Found {
		t.Fatal("Exists failed to find a tree projection")
	}
	if !IsTreeProjection(res.TP, dp, d) {
		t.Fatalf("found witness %s is not a tree projection", res.TP)
	}
}

func TestIsTreeProjectionRejections(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, ca")
	// The triangle is cyclic, so D itself is not a TP of D wrt D.
	if IsTreeProjection(d, d, d) {
		t.Error("cyclic D″ accepted")
	}
	// D ≤ D″ violated.
	dpp := parse(t, u, "ab, bc")
	full := parse(t, u, "abc")
	if IsTreeProjection(dpp, full, d) {
		t.Error("uncovering D″ accepted")
	}
	// D″ ≤ D′ violated.
	if IsTreeProjection(full, dpp, d) {
		t.Error("oversized D″ accepted")
	}
	// Valid: D″ = (abc) is a tree and sandwiches the triangle.
	if !IsTreeProjection(full, full, d) {
		t.Error("D″ = (abc) should be a tree projection")
	}
}

func TestExistsTrivialCases(t *testing.T) {
	u := schema.NewUniverse()
	// D′ = D a tree schema: D itself is the witness.
	d := parse(t, u, "ab, bc, cd")
	res := Exists(d, d)
	if !res.Found {
		t.Fatal("tree D should yield a tree projection of itself")
	}
	// Triangle with D′ = triangle: no tree projection exists at all
	// (any D″ ≤ D′ covering D keeps the cycle; the pool here is also
	// exhaustive for subsets that matter).
	tri := parse(t, u, "ab, bc, ca")
	res2 := Exists(tri, tri)
	if res2.Found {
		t.Errorf("triangle should have no tree projection within itself, got %s", res2.TP)
	}
	// Triangle with D′ = (abc): the single relation is a witness.
	res3 := Exists(parse(t, u, "abc"), tri)
	if !res3.Found {
		t.Error("D′ = (abc) should cover the triangle")
	}
}

func TestExistsWrtQuery(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	x := u.Set("a", "c")
	// D′ = (abc): covers D and the target relation (X).
	res := ExistsWrtQuery(parse(t, u, "abc"), d, x)
	if !res.Found {
		t.Fatal("tree projection wrt query should exist")
	}
	if !IsTreeProjectionWrtQuery(res.TP, parse(t, u, "abc"), d, x) {
		t.Error("witness rejected by verifier")
	}
	// D′ = D: X = ac fits under no member of D′ — no projection.
	res2 := ExistsWrtQuery(d, d, x)
	if res2.Found {
		t.Error("no member of D′ can cover the target ac")
	}
}

// TestExistsAgainstTreeSchemas: for tree schemas, a tree projection of
// D wrt D always exists (D itself); for Arings/Acliques wrt themselves
// never (deleting attributes cannot break their cycles without
// uncovering D).
func TestExistsAgainstTreeSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		d := gen.TreeSchema(rng, 1+rng.Intn(5), 2, 2)
		res := Exists(d, d)
		if !res.Found {
			t.Fatalf("tree schema %s: no self tree projection", d)
		}
	}
	for n := 3; n <= 5; n++ {
		if res := Exists(gen.Ring(n), gen.Ring(n)); res.Found {
			t.Errorf("Aring(%d) wrt itself should have no tree projection", n)
		}
		if res := Exists(gen.Clique(n), gen.Clique(n)); res.Found {
			t.Errorf("Aclique(%d) wrt itself should have no tree projection", n)
		}
	}
}

// TestWitnessesAlwaysVerify: every witness returned by the search
// passes the membership predicate.
func TestWitnessesAlwaysVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	found := 0
	for trial := 0; trial < 60; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(3), 2+rng.Intn(4), 0.5)
		// D′: D plus a few random unions — gives the search something
		// to work with.
		dp := d.Clone()
		for k := 0; k < 2; k++ {
			i, j := rng.Intn(len(d.Rels)), rng.Intn(len(d.Rels))
			dp.Add(d.Rels[i].Union(d.Rels[j]))
		}
		res := Exists(dp, d)
		if res.Found {
			found++
			if !IsTreeProjection(res.TP, dp, d) {
				t.Fatalf("bogus witness %s for D=%s D'=%s", res.TP, d, dp)
			}
		}
	}
	if found < 10 {
		t.Fatalf("too few witnesses exercised: %d", found)
	}
}

func TestDefaultPoolProperties(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	dp := parse(t, u, "abc, bcd")
	pool := DefaultPool(dp, d)
	seen := map[string]bool{}
	for _, s := range pool {
		if s.IsEmpty() {
			t.Error("empty bag in pool")
		}
		if seen[s.Key()] {
			t.Error("duplicate bag in pool")
		}
		seen[s.Key()] = true
		fits := false
		for _, r := range dp.Rels {
			if s.SubsetOf(r) {
				fits = true
			}
		}
		if !fits {
			t.Errorf("pool bag %s does not fit under D′", u.FormatSet(s))
		}
	}
	// The intersection bc = abc ∩ bcd must be present.
	if !seen[u.Set("b", "c").Key()] {
		t.Error("pairwise intersection missing from pool")
	}
}
