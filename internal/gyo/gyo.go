// Package gyo implements the GYO (Graham–Yu–Ozsoyoglu) reduction of the
// paper's Section 3.3: repeatedly (1) delete an attribute A ∉ X that
// occurs in exactly one relation schema ("isolated attribute deletion"
// with the sacred set X) and (2) eliminate a relation schema contained
// in another ("subset elimination"), until neither applies.
//
// The fixpoint GR(D, X) is unique and reduced (Maier–Ullman); Reduce
// computes it and records a replayable Trace. State exposes single-step
// reduction so tests can exercise arbitrary partial reductions pGR(D, X)
// and verify confluence.
package gyo

import (
	"fmt"
	"math/rand"

	"gyokit/internal/schema"
)

// OpKind distinguishes the two GYO operations.
type OpKind int

const (
	// AttrDelete is operation (1): delete attribute Attr from relation Rel,
	// legal when Attr ∉ X and Rel is the only relation containing Attr.
	AttrDelete OpKind = iota
	// SubsetEliminate is operation (2): delete relation Rel, legal when
	// its current schema is a subset of relation Into's current schema.
	SubsetEliminate
)

// Op is a single GYO operation. Rel and Into are indexes into the
// original schema D (stable across the whole reduction).
type Op struct {
	Kind OpKind
	Rel  int
	Attr schema.Attr // meaningful for AttrDelete
	Into int         // meaningful for SubsetEliminate
}

func (o Op) String() string {
	switch o.Kind {
	case AttrDelete:
		return fmt.Sprintf("delete attr %d from R%d", o.Attr, o.Rel)
	case SubsetEliminate:
		return fmt.Sprintf("eliminate R%d ⊆ R%d", o.Rel, o.Into)
	default:
		return "invalid op"
	}
}

// Result is a (possibly partial) GYO reduction outcome.
type Result struct {
	Input *schema.Schema // the original D
	X     schema.AttrSet // the sacred attribute set
	GR    *schema.Schema // surviving relation schemas (reduced sets), in original order
	Alive []int          // original indexes of the surviving relation schemas
	Trace []Op           // the operations applied, in order
}

// Empty reports the paper's "GR(D) = ∅" convention: every surviving
// relation schema is empty (after full reduction at most one empty
// schema survives). For X = ∅ this is exactly the Corollary 3.1 tree
// test.
func (r *Result) Empty() bool {
	for _, rel := range r.GR.Rels {
		if !rel.IsEmpty() {
			return false
		}
	}
	return true
}

// Reduce computes the full GYO reduction GR(D, X).
func Reduce(d *schema.Schema, x schema.AttrSet) *Result {
	st := NewState(d, x)
	st.Run()
	return st.Result()
}

// ReduceFull computes GR(D) = GR(D, ∅).
func ReduceFull(d *schema.Schema) *Result {
	return Reduce(d, schema.AttrSet{})
}

// IsTree reports whether D is a tree schema, via Corollary 3.1:
// D is a tree schema iff GR(D) = ∅.
func IsTree(d *schema.Schema) bool {
	return ReduceFull(d).Empty()
}

// TreefyingRelation returns ∪(GR(D)), the relation schema of least
// cardinality whose addition turns D into a tree schema (Corollary 3.2).
// For a tree schema it returns the empty set.
func TreefyingRelation(d *schema.Schema) schema.AttrSet {
	return ReduceFull(d).GR.Attrs()
}

// State is a mutable partial-reduction state over a fixed input D and
// sacred set X. The zero value is not usable; construct with NewState.
type State struct {
	input *schema.Schema
	x     schema.AttrSet
	rels  []schema.AttrSet // current contents, indexed like input
	alive []bool
	occ   []int // occ[a] = number of alive relations containing a
	trace []Op
}

// NewState returns a fresh reduction state for (d, x).
func NewState(d *schema.Schema, x schema.AttrSet) *State {
	st := &State{
		input: d,
		x:     x.Clone(),
		rels:  make([]schema.AttrSet, len(d.Rels)),
		alive: make([]bool, len(d.Rels)),
		occ:   make([]int, d.U.Size()),
	}
	for i, r := range d.Rels {
		st.rels[i] = r.Clone()
		st.alive[i] = true
		r.ForEach(func(a schema.Attr) bool {
			st.occ[a]++
			return true
		})
	}
	return st
}

// Rel returns the current contents of relation i (empty if eliminated).
func (st *State) Rel(i int) schema.AttrSet {
	if !st.alive[i] {
		return schema.AttrSet{}
	}
	return st.rels[i].Clone()
}

// AliveCount returns the number of surviving relation schemas.
func (st *State) AliveCount() int {
	n := 0
	for _, a := range st.alive {
		if a {
			n++
		}
	}
	return n
}

// ApplicableOps returns every currently legal GYO operation, in a
// deterministic order.
func (st *State) ApplicableOps() []Op {
	var ops []Op
	for i, r := range st.rels {
		if !st.alive[i] {
			continue
		}
		r.ForEach(func(a schema.Attr) bool {
			if st.occ[a] == 1 && !st.x.Has(a) {
				ops = append(ops, Op{Kind: AttrDelete, Rel: i, Attr: a})
			}
			return true
		})
	}
	for i := range st.rels {
		if !st.alive[i] {
			continue
		}
		for j := range st.rels {
			if i == j || !st.alive[j] {
				continue
			}
			if st.rels[i].SubsetOf(st.rels[j]) {
				ops = append(ops, Op{Kind: SubsetEliminate, Rel: i, Into: j})
			}
		}
	}
	return ops
}

// Apply performs one operation, validating legality.
func (st *State) Apply(op Op) error {
	switch op.Kind {
	case AttrDelete:
		if op.Rel < 0 || op.Rel >= len(st.rels) || !st.alive[op.Rel] {
			return fmt.Errorf("gyo: attr delete on dead relation R%d", op.Rel)
		}
		if !st.rels[op.Rel].Has(op.Attr) {
			return fmt.Errorf("gyo: R%d does not contain attribute %d", op.Rel, op.Attr)
		}
		if st.x.Has(op.Attr) {
			return fmt.Errorf("gyo: attribute %d is sacred", op.Attr)
		}
		if st.occ[op.Attr] != 1 {
			return fmt.Errorf("gyo: attribute %d occurs in %d relations", op.Attr, st.occ[op.Attr])
		}
		st.rels[op.Rel] = st.rels[op.Rel].Remove(op.Attr)
		st.occ[op.Attr] = 0
	case SubsetEliminate:
		if op.Rel < 0 || op.Rel >= len(st.rels) || !st.alive[op.Rel] {
			return fmt.Errorf("gyo: subset elimination of dead relation R%d", op.Rel)
		}
		if op.Into < 0 || op.Into >= len(st.rels) || !st.alive[op.Into] || op.Into == op.Rel {
			return fmt.Errorf("gyo: invalid superset R%d", op.Into)
		}
		if !st.rels[op.Rel].SubsetOf(st.rels[op.Into]) {
			return fmt.Errorf("gyo: R%d ⊄ R%d", op.Rel, op.Into)
		}
		st.alive[op.Rel] = false
		st.rels[op.Rel].ForEach(func(a schema.Attr) bool {
			st.occ[a]--
			return true
		})
	default:
		return fmt.Errorf("gyo: unknown op kind %d", op.Kind)
	}
	st.trace = append(st.trace, op)
	return nil
}

// Run applies operations until none is applicable, using a deterministic
// strategy: exhaust attribute deletions, then perform one round of
// subset eliminations, and repeat. Confluence (Maier–Ullman uniqueness)
// guarantees the fixpoint is strategy-independent.
func (st *State) Run() {
	for {
		progress := false
		// Exhaust attribute deletions: cheap via occurrence counts.
		for i, r := range st.rels {
			if !st.alive[i] {
				continue
			}
			var doomed []schema.Attr
			r.ForEach(func(a schema.Attr) bool {
				if st.occ[a] == 1 && !st.x.Has(a) {
					doomed = append(doomed, a)
				}
				return true
			})
			for _, a := range doomed {
				if err := st.Apply(Op{Kind: AttrDelete, Rel: i, Attr: a}); err != nil {
					panic("gyo: internal: " + err.Error())
				}
				progress = true
			}
		}
		// One round of subset eliminations.
		for i := range st.rels {
			if !st.alive[i] {
				continue
			}
			for j := range st.rels {
				if i == j || !st.alive[j] || !st.alive[i] {
					continue
				}
				if st.rels[i].SubsetOf(st.rels[j]) {
					if err := st.Apply(Op{Kind: SubsetEliminate, Rel: i, Into: j}); err != nil {
						panic("gyo: internal: " + err.Error())
					}
					progress = true
					break
				}
			}
		}
		if !progress {
			return
		}
	}
}

// RunRandom applies up to maxSteps random applicable operations using
// rng, stopping early at a fixpoint. With maxSteps < 0 it runs to the
// fixpoint. Used to exercise partial reductions and confluence.
func (st *State) RunRandom(rng *rand.Rand, maxSteps int) {
	for steps := 0; maxSteps < 0 || steps < maxSteps; steps++ {
		ops := st.ApplicableOps()
		if len(ops) == 0 {
			return
		}
		op := ops[rng.Intn(len(ops))]
		if err := st.Apply(op); err != nil {
			panic("gyo: internal: " + err.Error())
		}
	}
}

// Result snapshots the current state as a Result. The GR schema lists
// surviving relations in original order with their current contents.
func (st *State) Result() *Result {
	out := &Result{
		Input: st.input,
		X:     st.x.Clone(),
		GR:    &schema.Schema{U: st.input.U},
		Trace: append([]Op(nil), st.trace...),
	}
	for i, r := range st.rels {
		if st.alive[i] {
			out.GR.Rels = append(out.GR.Rels, r.Clone())
			out.Alive = append(out.Alive, i)
		}
	}
	return out
}

// Snapshot returns the current schema of surviving relations.
func (st *State) Snapshot() *schema.Schema {
	return st.Result().GR
}
