package gyo

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/schema"
)

func parse(t *testing.T, u *schema.Universe, s string) *schema.Schema {
	t.Helper()
	d, err := schema.Parse(u, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFig1Classification reproduces the type column of the paper's
// Figure 1 via Corollary 3.1.
func TestFig1Classification(t *testing.T) {
	cases := []struct {
		schema string
		tree   bool
	}{
		{"ab, bc, cd", true},
		{"ab, bc, ac", false},
		{"abc, cde, ace, afe", true},
	}
	for _, c := range cases {
		u := schema.NewUniverse()
		d := parse(t, u, c.schema)
		if got := IsTree(d); got != c.tree {
			t.Errorf("IsTree(%s) = %v, want %v", c.schema, got, c.tree)
		}
	}
}

func TestReduceTrivia(t *testing.T) {
	u := schema.NewUniverse()
	// Single relation reduces to a single empty schema.
	r := ReduceFull(parse(t, u, "abc"))
	if !r.Empty() || len(r.Alive) != 1 {
		t.Errorf("single relation: GR = %s", r.GR)
	}
	// The empty schema is (vacuously) a tree schema.
	if !ReduceFull(&schema.Schema{U: u}).Empty() {
		t.Error("empty schema should reduce to empty")
	}
	// Disconnected tree schema still reduces to empty.
	if !IsTree(parse(t, u, "ab, cd")) {
		t.Error("(ab, cd) should be a tree schema")
	}
}

func TestReduceRingsAndCliques(t *testing.T) {
	// Arings and Acliques are irreducible under GYO with X = ∅: no
	// attribute occurs once, and no relation is a subset of another.
	for n := 3; n <= 8; n++ {
		ring := gen.Ring(n)
		r := ReduceFull(ring)
		if len(r.Trace) != 0 {
			t.Errorf("Aring(%d): GYO applied %d ops, want 0", n, len(r.Trace))
		}
		if r.Empty() {
			t.Errorf("Aring(%d) claimed tree", n)
		}
		cl := gen.Clique(n)
		rc := ReduceFull(cl)
		if len(rc.Trace) != 0 || rc.Empty() {
			t.Errorf("Aclique(%d): trace=%d empty=%v", n, len(rc.Trace), rc.Empty())
		}
	}
}

func TestSacredSet(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, cd")
	// With X = {a, d} sacred, GYO cannot empty the chain: b and c get
	// deleted where isolated, subsets collapse, but a and d survive.
	r := Reduce(d, u.Set("a", "d"))
	if r.Empty() {
		t.Fatal("sacred attributes were deleted")
	}
	got := r.GR.Attrs()
	if !got.Equal(u.Set("a", "d").Union(got.Intersect(u.Set("b", "c")))) {
		// a and d must be present; b/c may or may not survive depending
		// on subset collapses — but for the chain they must go.
	}
	if !r.GR.Attrs().Has(mustAttr(u, "a")) || !r.GR.Attrs().Has(mustAttr(u, "d")) {
		t.Errorf("GR(D, ad) = %s lost a sacred attribute", r.GR)
	}
	// GR(D, U(D)) on a reduced schema is D itself: only subset
	// elimination is permitted and none applies.
	d2 := parse(t, u, "ab, bc")
	r2 := Reduce(d2, d2.Attrs())
	if !r2.GR.MultisetEqual(d2) {
		t.Errorf("GR(D, U(D)) = %s, want %s", r2.GR, d2)
	}
}

func mustAttr(u *schema.Universe, name string) schema.Attr {
	a, ok := u.Lookup(name)
	if !ok {
		panic("missing attr " + name)
	}
	return a
}

// TestSection51Example: GR((abc, ab, bc), ∪(ab, bc)) = (abc) ⊄ (ab, bc),
// the paper's §5.1 counterexample.
func TestSection51Example(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	dp := parse(t, u, "ab, bc")
	r := Reduce(d, dp.Attrs())
	if r.GR.String() != "(abc)" {
		t.Errorf("GR = %s, want (abc)", r.GR)
	}
}

// TestConfluence verifies Maier–Ullman uniqueness: any maximal sequence
// of GYO operations reaches the same reduced schema.
func TestConfluence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		var d *schema.Schema
		if trial%2 == 0 {
			d = gen.RandomSchema(rng, 2+rng.Intn(5), 2+rng.Intn(5), 0.5)
		} else {
			d = gen.TreeSchema(rng, 1+rng.Intn(6), 2, 2)
		}
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.3)
		want := Reduce(d, x).GR
		for run := 0; run < 4; run++ {
			st := NewState(d, x)
			st.RunRandom(rng, -1)
			got := st.Snapshot()
			if got.Key() != want.Key() {
				t.Fatalf("trial %d run %d: random order gave %s, deterministic gave %s (D=%s, X=%s)",
					trial, run, got, want, d, d.U.FormatSet(x))
			}
		}
	}
}

// TestPartialThenFull: completing any partial reduction reaches GR(D,X).
func TestPartialThenFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(5), 3+rng.Intn(4), 0.4)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.2)
		want := Reduce(d, x).GR.Key()
		st := NewState(d, x)
		st.RunRandom(rng, rng.Intn(4)) // partial
		st.Run()                       // complete
		if st.Snapshot().Key() != want {
			t.Fatalf("partial+full ≠ full on %s", d)
		}
	}
}

func TestGRIsReduced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(6), 2+rng.Intn(6), 0.5)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.3)
		gr := Reduce(d, x).GR
		if !gr.IsReduced() {
			t.Fatalf("GR(%s, %s) = %s is not reduced", d, d.U.FormatSet(x), gr)
		}
	}
}

// TestTypePreservation: GYO operations preserve schema type (the paper's
// §3.3 remark) — D is a tree schema iff any partial reduction of it is.
func TestTypePreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		var d *schema.Schema
		if trial%2 == 0 {
			d = gen.RandomSchema(rng, 2+rng.Intn(5), 2+rng.Intn(5), 0.5)
		} else {
			d = gen.TreeSchema(rng, 1+rng.Intn(6), 2, 2)
		}
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.25)
		before := IsTree(d)
		st := NewState(d, x)
		st.RunRandom(rng, 1+rng.Intn(5))
		after := IsTree(st.Snapshot())
		if before != after {
			t.Fatalf("partial GYO changed type: %s (tree=%v) → %s (tree=%v)",
				d, before, st.Snapshot(), after)
		}
	}
}

// TestTheorem32 checks the four statements of Theorem 3.2 on random
// schemas:
//
//	(i)   D ∪ (R) tree ⇒ GR(D) ∪ (R) tree
//	(ii)  D ∪ (∪GR(D)) is a tree schema
//	(iii) D ∪ (S) tree ⇒ S ⊇ ∪GR(D)
//	(iv)  GR(D) ∪ (S) tree ⇒ S ⊇ ∪GR(D)
func TestTheorem32(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(5), 2+rng.Intn(5), 0.5)
		gr := ReduceFull(d).GR
		ugr := gr.Attrs()

		// (ii)
		if !IsTree(d.WithRel(ugr)) {
			t.Fatalf("(ii) failed: %s ∪ (%s) not a tree", d, d.U.FormatSet(ugr))
		}
		// Random candidate additions for (i), (iii), (iv).
		for k := 0; k < 5; k++ {
			s := gen.RandomAttrSubset(rng, d.Attrs(), 0.6)
			if IsTree(d.WithRel(s)) {
				if !IsTree(gr.WithRel(s)) {
					t.Fatalf("(i) failed: D∪(S) tree but GR(D)∪(S) cyclic; D=%s S=%s", d, d.U.FormatSet(s))
				}
				if !ugr.SubsetOf(s) {
					t.Fatalf("(iii) failed: D∪(S) tree but S=%s ⊉ ∪GR=%s; D=%s",
						d.U.FormatSet(s), d.U.FormatSet(ugr), d)
				}
			}
			if IsTree(gr.WithRel(s)) && !ugr.SubsetOf(s) {
				t.Fatalf("(iv) failed: GR(D)∪(S) tree but S ⊉ ∪GR; D=%s S=%s", d, d.U.FormatSet(s))
			}
		}
	}
}

// TestCorollary32 checks minimality of ∪GR(D): it treefies D, and for
// cyclic D no strictly smaller relation schema does.
func TestCorollary32(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for trial := 0; trial < 200 && checked < 30; trial++ {
		d := gen.RandomSchema(rng, 3, 2+rng.Intn(4), 0.6)
		if IsTree(d) {
			continue
		}
		checked++
		ugr := TreefyingRelation(d)
		if !IsTree(d.WithRel(ugr)) {
			t.Fatalf("∪GR did not treefy %s", d)
		}
		// By Theorem 3.2(iii) any treefying S contains ∪GR(D), so every
		// proper subset of ∪GR(D) must fail.
		attrs := ugr.Attrs()
		for _, a := range attrs {
			if IsTree(d.WithRel(ugr.Remove(a))) {
				t.Fatalf("smaller relation %s also treefies %s",
					d.U.FormatSet(ugr.Remove(a)), d)
			}
		}
	}
	if checked == 0 {
		t.Fatal("generator produced no cyclic schemas")
	}
}

func TestApplyValidation(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	st := NewState(d, u.Set("a"))
	a, b := mustAttr(u, "a"), mustAttr(u, "b")
	if err := st.Apply(Op{Kind: AttrDelete, Rel: 0, Attr: a}); err == nil {
		t.Error("deleting sacred attribute allowed")
	}
	if err := st.Apply(Op{Kind: AttrDelete, Rel: 0, Attr: b}); err == nil {
		t.Error("deleting shared attribute allowed")
	}
	if err := st.Apply(Op{Kind: SubsetEliminate, Rel: 0, Into: 1}); err == nil {
		t.Error("eliminating non-subset allowed")
	}
	if err := st.Apply(Op{Kind: SubsetEliminate, Rel: 0, Into: 0}); err == nil {
		t.Error("self-elimination allowed")
	}
	if err := st.Apply(Op{Kind: AttrDelete, Rel: 9, Attr: a}); err == nil {
		t.Error("op on out-of-range relation allowed")
	}
	if err := st.Apply(Op{Kind: OpKind(99)}); err == nil {
		t.Error("unknown op kind allowed")
	}
	// A legal deletion: c occurs only in R1.
	c := mustAttr(u, "c")
	if err := st.Apply(Op{Kind: AttrDelete, Rel: 1, Attr: c}); err != nil {
		t.Errorf("legal op rejected: %v", err)
	}
	// Now R1 = {b} ⊆ R0.
	if err := st.Apply(Op{Kind: SubsetEliminate, Rel: 1, Into: 0}); err != nil {
		t.Errorf("legal elimination rejected: %v", err)
	}
	if err := st.Apply(Op{Kind: AttrDelete, Rel: 1, Attr: b}); err == nil {
		t.Error("op on dead relation allowed")
	}
	if st.AliveCount() != 1 {
		t.Errorf("AliveCount = %d", st.AliveCount())
	}
	if !st.Rel(1).IsEmpty() {
		t.Error("dead relation should read as empty")
	}
}

func TestOpString(t *testing.T) {
	if (Op{Kind: AttrDelete, Rel: 2, Attr: 5}).String() == "" ||
		(Op{Kind: SubsetEliminate, Rel: 1, Into: 0}).String() == "" ||
		(Op{Kind: OpKind(9)}).String() != "invalid op" {
		t.Error("Op.String unhelpful")
	}
}

func TestTraceReplay(t *testing.T) {
	// Replaying a recorded trace on a fresh state reproduces GR.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(5), 2+rng.Intn(5), 0.5)
		res := ReduceFull(d)
		st := NewState(d, schema.AttrSet{})
		for _, op := range res.Trace {
			if err := st.Apply(op); err != nil {
				t.Fatalf("replay failed at %v: %v", op, err)
			}
		}
		if st.Snapshot().Key() != res.GR.Key() {
			t.Fatal("replay diverged")
		}
		if len(st.ApplicableOps()) != 0 {
			t.Fatal("trace was not maximal")
		}
	}
}
