package exp

import (
	"fmt"
	"io"

	"gyokit/internal/gamma"
	"gyokit/internal/graph"
	"gyokit/internal/gyo"
	"gyokit/internal/qualgraph"
	"gyokit/internal/schema"
	"gyokit/internal/treeproj"
)

func init() {
	register(Experiment{ID: "fig1", Title: "Figure 1: tree vs cyclic schemas", Run: runFig1})
	register(Experiment{ID: "fig2", Title: "Figure 2: Arings, Acliques, Lemma 3.1 witnesses", Run: runFig2})
	register(Experiment{ID: "fig45", Title: "Figures 4–5: γ-cycle machinery of Theorem 5.3", Run: runFig45})
	register(Experiment{ID: "fig7", Title: "Figure 7: intersection deletion cannot disconnect Arings/Acliques", Run: runFig7})
	register(Experiment{ID: "sec32", Title: "§3.2 example: tree projection of the 8-ring", Run: runSec32})
}

// runFig1 reproduces Figure 1's classification table.
func runFig1(w io.Writer) error {
	cases := []struct {
		in   string
		tree bool
	}{
		{"ab, bc, cd", true},
		{"ab, bc, ac", false},
		{"abc, cde, ace, afe", true},
	}
	for _, c := range cases {
		u := schema.NewUniverse()
		d, err := schema.Parse(u, c.in)
		if err != nil {
			return err
		}
		got := gyo.IsTree(d)
		kind := "cyclic"
		if got {
			kind = "tree"
		}
		fmt.Fprintf(w, "%-22s → %s", d, kind)
		if got {
			t, ok := qualgraph.QualTree(d)
			if !ok {
				return fmt.Errorf("no qual tree for tree schema %s", d)
			}
			fmt.Fprintf(w, " (qual tree edges %v)", t.Edges())
		}
		fmt.Fprintln(w)
		if got != c.tree {
			return fmt.Errorf("%s: classified %v, paper says %v", d, got, c.tree)
		}
	}
	// The cyclic example has no qual tree at all (the triangle is its
	// only qual graph).
	u := schema.NewUniverse()
	tri := schema.MustParse(u, "ab, bc, ac")
	count := 0
	qualgraph.EnumerateQualTrees(tri, func(*graph.Undirected) bool { count++; return true })
	if count != 0 {
		return fmt.Errorf("(ab, bc, ac) has %d qual trees, want 0", count)
	}
	fmt.Fprintf(w, "%s has no qual tree (its only qual graph is the triangle)\n", tri)
	return nil
}

// runFig2 reproduces Figure 2: the Aring/Aclique of size 4 and the
// Lemma 3.1 witnesses of Fig. 2c. (The two composite schemas of
// Fig. 2c are reconstructed from the OCR-damaged figure, preserving
// its stated reductions: deleting X = abgi exposes an Aring of size 4,
// deleting X = efgi exposes an Aclique of size 4.)
func runFig2(w io.Writer) error {
	u := schema.NewUniverse()
	ring := schema.Aring(u, 4, "")
	clique := schema.Aclique(schema.NewUniverse(), 4, "")
	fmt.Fprintf(w, "Aring(4)   = %s\n", ring)
	fmt.Fprintf(w, "Aclique(4) = %s\n", clique)
	if !schema.IsAring(ring) || !schema.IsAclique(clique) {
		return fmt.Errorf("constructors not recognized by recognizers")
	}
	if gyo.IsTree(ring) || gyo.IsTree(clique) {
		return fmt.Errorf("Arings and Acliques must be cyclic")
	}

	type c2 struct {
		in, del, kind string
	}
	for _, c := range []c2{
		{"abcd, de, gef, fci, ab, big", "abgi", "Aring"},
		{"bcde, acdf, abdg, abci", "efgi", "Aclique"},
	} {
		uu := schema.NewUniverse()
		d := schema.MustParse(uu, c.in)
		x, _, kind, found := schema.Lemma31Witness(d)
		if !found {
			return fmt.Errorf("%s: no Lemma 3.1 witness (should be cyclic)", d)
		}
		fmt.Fprintf(w, "%s: delete X=%s → %s core %s (Lemma 3.1 search: X=%s, %s)\n",
			d, c.del, c.kind, d.DeleteAttrs(uu.Set(splitLetters(c.del)...)).Reduce(),
			uu.FormatSet(x), kind)
		// The figure's own deletion must expose the stated core.
		manual := dropEmptyRels(d.DeleteAttrs(uu.Set(splitLetters(c.del)...)).Reduce())
		switch c.kind {
		case "Aring":
			if !schema.IsAring(manual) {
				return fmt.Errorf("deleting %s did not expose an Aring: %s", c.del, manual)
			}
		case "Aclique":
			if !schema.IsAclique(manual) {
				return fmt.Errorf("deleting %s did not expose an Aclique: %s", c.del, manual)
			}
		}
	}
	return nil
}

func splitLetters(s string) []string {
	out := make([]string, 0, len(s))
	for _, r := range s {
		out = append(out, string(r))
	}
	return out
}

func dropEmptyRels(d *schema.Schema) *schema.Schema {
	out := &schema.Schema{U: d.U}
	for _, r := range d.Rels {
		if !r.IsEmpty() {
			out.Rels = append(out.Rels, r)
		}
	}
	return out
}

// runFig45 demonstrates the Theorem 5.3 γ-cycle machinery that
// Figures 4 and 5 illustrate: a weak γ-cycle witness for a cyclic
// schema, the failing disconnection pair of characterization (ii), and
// the agreement of all three characterizations.
func runFig45(w io.Writer) error {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd, da")
	cyc, found := gamma.FindWeakCycle(d)
	if !found {
		return fmt.Errorf("4-ring has no weak γ-cycle?")
	}
	fmt.Fprintf(w, "weak γ-cycle in %s: relations %v via attributes %v\n", d, cyc.Rels, attrNames(u, cyc.Attrs))
	if gamma.IsGammaAcyclic(d) || gamma.IsGammaAcyclicSubtree(d) {
		return fmt.Errorf("ring misclassified as γ-acyclic")
	}
	// A γ-acyclic schema for contrast: every characterization agrees.
	e := schema.MustParse(u, "ab, bc, cd")
	if !gamma.IsGammaAcyclic(e) || !gamma.IsGammaAcyclicCycleSearch(e) || !gamma.IsGammaAcyclicSubtree(e) {
		return fmt.Errorf("chain misclassified")
	}
	fmt.Fprintf(w, "chain %s: γ-acyclic by all three characterizations\n", e)
	// The §5.1 boundary case: tree but not γ-acyclic.
	f := schema.MustParse(u, "abc, ab, bc")
	if !gyo.IsTree(f) || gamma.IsGammaAcyclic(f) {
		return fmt.Errorf("(abc, ab, bc) should be tree yet not γ-acyclic")
	}
	fmt.Fprintf(w, "%s: tree schema but NOT γ-acyclic (the §5.1 example)\n", f)
	return nil
}

func attrNames(u *schema.Universe, attrs []schema.Attr) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = u.Name(a)
	}
	return out
}

// runFig7 reproduces Figure 7: in Arings and Acliques, deleting the
// intersection of two intersecting relation schemas never disconnects
// their residues — the reason cyclic schemas fail Theorem 5.3(ii).
func runFig7(w io.Writer) error {
	for n := 3; n <= 6; n++ {
		for _, mk := range []struct {
			name string
			d    *schema.Schema
		}{
			{"Aring", schema.Aring(schema.NewUniverse(), n, "")},
			{"Aclique", schema.Aclique(schema.NewUniverse(), n, "")},
		} {
			d := mk.d
			violations := 0
			pairs := 0
			for i := 0; i < len(d.Rels); i++ {
				for j := i + 1; j < len(d.Rels); j++ {
					x := d.Rels[i].Intersect(d.Rels[j])
					if x.IsEmpty() {
						continue
					}
					pairs++
					del := d.DeleteAttrs(x)
					if !sameComponent(del, i, j) {
						violations++
					}
				}
			}
			if violations != 0 {
				return fmt.Errorf("%s(%d): %d/%d pairs disconnected — contradicts Fig. 7", mk.name, n, violations, pairs)
			}
			fmt.Fprintf(w, "%s(%d): all %d intersecting pairs stay connected after deleting R∩S\n", mk.name, n, pairs)
		}
	}
	return nil
}

func sameComponent(d *schema.Schema, i, j int) bool {
	if d.Rels[i].IsEmpty() || d.Rels[j].IsEmpty() {
		return false
	}
	for _, comp := range d.Components() {
		hasI, hasJ := false, false
		for _, k := range comp {
			hasI = hasI || k == i
			hasJ = hasJ || k == j
		}
		if hasI && hasJ {
			return true
		}
	}
	return false
}

// runSec32 reproduces the §3.2 tree-projection example on the 8-ring.
func runSec32(w io.Writer) error {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, cd, de, ef, fg, gh, ha")
	dpp := schema.MustParse(u, "ab, abch, cdgh, defg, ef")
	dp := schema.MustParse(u, "abef, abch, cdgh, defg, ef")
	fmt.Fprintf(w, "D   = %s (cyclic: %v)\n", d, !gyo.IsTree(d))
	fmt.Fprintf(w, "D″  = %s (tree: %v)\n", dpp, gyo.IsTree(dpp))
	fmt.Fprintf(w, "D′  = %s (cyclic: %v)\n", dp, !gyo.IsTree(dp))
	if gyo.IsTree(d) || gyo.IsTree(dp) || !gyo.IsTree(dpp) {
		return fmt.Errorf("classification mismatch with the paper")
	}
	if !treeproj.IsTreeProjection(dpp, dp, d) {
		return fmt.Errorf("D″ ∉ TP(D′, D)")
	}
	res := treeproj.Exists(dp, d)
	if !res.Found {
		return fmt.Errorf("search failed to find any tree projection")
	}
	fmt.Fprintf(w, "search witness: %s (pool %d bags)\n", res.TP, res.PoolSize)
	return nil
}
