package exp

import (
	"fmt"
	"io"
	"math/rand"

	"gyokit/internal/core"
	"gyokit/internal/gen"
	"gyokit/internal/lossless"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/treefy"
)

func init() {
	register(Experiment{ID: "sec51", Title: "§5.1 example: lossless joins and subtrees", Run: runSec51})
	register(Experiment{ID: "sec6", Title: "§6 example: CC-pruned query solving", Run: runSec6})
	register(Experiment{ID: "thm42", Title: "Theorem 4.2: bin packing ↔ fixed treefication", Run: runThm42})
}

// runSec51 reproduces the §5.1 example: D = (abc, ab, bc),
// D′ = (ab, bc): ⋈D ⊭ ⋈D′, and D′ is not a subtree of D.
func runSec51(w io.Writer) error {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "abc, ab, bc")
	dp := schema.MustParse(u, "ab, bc")
	rep, err := core.LosslessJoin(d, dp)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "D = %s, D′ = %s\n", d, dp)
	fmt.Fprintf(w, "⋈D ⊨ ⋈D′: %v   CC(D, ∪D′) = %s   subtree: %v\n", rep.Holds, rep.CC, rep.Subtree)
	if rep.Holds || rep.Subtree || !rep.SubtreeApplicable {
		return fmt.Errorf("paper says ⊭ and not-a-subtree")
	}
	// Semantic witness.
	j, found := lossless.Falsify(d, dp, rand.New(rand.NewSource(1)), 100, 6, 2)
	if !found {
		return fmt.Errorf("no semantic counterexample found")
	}
	fmt.Fprintf(w, "witness universal relation J (satisfies ⋈D, violates ⋈D′): %s\n", j)
	// The positive contrast: (abc, ab) IS a subtree and lossless.
	dp2 := schema.MustParse(u, "abc, ab")
	rep2, err := core.LosslessJoin(d, dp2)
	if err != nil {
		return err
	}
	if !rep2.Holds || !rep2.Subtree {
		return fmt.Errorf("(abc, ab) should be lossless")
	}
	fmt.Fprintf(w, "contrast: ⋈D ⊨ ⋈(abc, ab) = %v (a subtree)\n", rep2.Holds)
	return nil
}

// runSec6 reproduces the §6 worked example: D = (abg, bcg, acf, ad,
// de, ea), Q = (D, abc). CC(D, abc) = (abg, bcg, ac): relations ad,
// de, ea are irrelevant and column f is projected out. The CC-pruned
// plan must agree with the naive plan on random UR databases while
// touching fewer relations.
func runSec6(w io.Writer) error {
	u := schema.NewUniverse()
	d := schema.MustParse(u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	sol, err := core.SolveByJoins(d, x)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "D = %s, X = abc\n", d)
	fmt.Fprintf(w, "CC(D, X) = %s\n", sol.CC)
	fmt.Fprintf(w, "irrelevant relations: %v (expect [3 4 5] = ad, de, ea)\n", sol.Irrelevant)
	want := schema.MustParse(u, "abg, bcg, ac")
	if !sol.CC.SetEqual(want) {
		return fmt.Errorf("CC = %s, want %s", sol.CC, want)
	}
	if len(sol.Irrelevant) != 3 {
		return fmt.Errorf("irrelevant = %v, want the three ring relations", sol.Irrelevant)
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		i, _ := relation.RandomUniversal(u, d.Attrs(), 40, 3, rng)
		db := relation.URDatabase(d, i)
		got, st, err := sol.Plan.Eval(db)
		if err != nil {
			return err
		}
		wantRes := db.Eval(x)
		if !got.Equal(wantRes) {
			return fmt.Errorf("CC plan wrong on seed %d", seed)
		}
		if seed == 0 {
			fmt.Fprintf(w, "seed 0: |Q(D)| = %d, plan joins=%d projects=%d tuples=%d\n",
				got.Card(), st.Joins, st.Projects, st.TuplesProduced)
		}
	}
	fmt.Fprintf(w, "CC-pruned plan ≡ naive plan on 5 random UR databases ✓\n")
	return nil
}

// runThm42 verifies the Theorem 4.2 reduction empirically: random bin
// packing instances are satisfiable exactly when their treefication
// images are, with witnesses checked by GYO.
func runThm42(w io.Writer) error {
	rng := rand.New(rand.NewSource(42))
	yes, no := 0, 0
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(3)
		bp := gen.BinPacking(rng, n, 5, 1+rng.Intn(2), 5+rng.Intn(4))
		inst, err := treefy.FromBinPacking(bp)
		if err != nil {
			return err
		}
		_, bpOK := treefy.SolveBinPacking(bp)
		witness, tfOK := treefy.Solve(inst)
		if bpOK != tfOK {
			return fmt.Errorf("reduction broken on %+v: bp=%v tf=%v", bp, bpOK, tfOK)
		}
		if tfOK {
			yes++
			if len(witness) > inst.K {
				return fmt.Errorf("witness too large")
			}
		} else {
			no++
		}
		// Tiny instances: cross-check with brute force.
		if inst.D.Attrs().Card() <= 7 && inst.K <= 2 {
			if treefy.BruteForce(inst) != bpOK {
				return fmt.Errorf("brute force disagrees on %+v", bp)
			}
		}
	}
	fmt.Fprintf(w, "25 random instances: %d satisfiable, %d unsatisfiable — bin packing and fixed treefication agree on all\n", yes, no)
	// The single-relation corollary (3.2) in action.
	u := schema.NewUniverse()
	d := schema.MustParse(u, "ab, bc, ca, cd")
	cls, err := core.Classify(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Corollary 3.2: %s is cyclic; least treefying relation = %s\n",
		d, u.FormatSet(cls.TreefyingRelation))
	if cls.Tree {
		return fmt.Errorf("(ab, bc, ca, cd) should be cyclic")
	}
	if got := u.FormatSet(cls.TreefyingRelation); got != "abc" {
		return fmt.Errorf("∪GR(D) = %s, want abc", got)
	}
	return nil
}
