// Package exp contains the executable reproductions of every figure
// and worked example in the paper (the E-* index of DESIGN.md). Each
// experiment prints a human-readable report and returns an error if
// any assertion about the paper's claims fails, so the same code backs
// both `gyobench` and the test suite.
package exp

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string // e.g. "fig1"
	Title string
	Run   func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment, ordered by ID registration.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunOne executes one experiment against w with the standard header,
// reporting wall time when timed is set.
func RunOne(e Experiment, w io.Writer, timed bool) error {
	fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Title)
	start := time.Now()
	if err := e.Run(w); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	if timed {
		fmt.Fprintf(w, "[%s took %v]\n", e.ID, time.Since(start))
	}
	return nil
}

// RunAll executes every experiment against w, stopping at the first
// failure.
func RunAll(w io.Writer) error { return RunAllTimed(w, false) }

// RunAllTimed is RunAll with optional per-experiment wall time.
func RunAllTimed(w io.Writer, timed bool) error {
	for _, e := range All() {
		if err := RunOne(e, w, timed); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
