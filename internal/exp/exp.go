// Package exp contains the executable reproductions of every figure
// and worked example in the paper (the E-* index of DESIGN.md). Each
// experiment prints a human-readable report and returns an error if
// any assertion about the paper's claims fails, so the same code backs
// both `gyobench` and the test suite.
package exp

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible artifact.
type Experiment struct {
	ID    string // e.g. "fig1"
	Title string
	Run   func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment, ordered by ID registration.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment against w, stopping at the first
// failure.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Title)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
