package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/program"
	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
	"gyokit/internal/tableau"
)

func init() {
	register(Experiment{ID: "perf1", Title: "GYO reduction scaling (rings, cliques, random trees)", Run: runPerf1})
	register(Experiment{ID: "perf2", Title: "CC: GYO fast path vs tableau minimization (tree schemas)", Run: runPerf2})
	register(Experiment{ID: "perf4", Title: "Query evaluation: naive join vs CC-pruned vs Yannakakis", Run: runPerf4})
	register(Experiment{ID: "perf5", Title: "Join-tree construction: MST vs GYO trace", Run: runPerf5})
	register(Experiment{ID: "perf8", Title: "Cyclic strategy (§4): naive join vs treefy-then-Yannakakis", Run: runPerf8})
	register(Experiment{ID: "perf9", Title: "§6 cost accounting: per-statement tuples in/out and wall time", Run: runPerf9})
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// runPerf1: GYO reduction wall-clock over growing inputs. The paper's
// claim is simply polynomial-time feasibility; the table should show
// smooth low-order growth.
func runPerf1(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "n", "ring", "clique", "rand tree")
	for _, n := range []int{8, 16, 32, 64, 128} {
		ring := gen.Ring(n)
		tree := gen.TreeSchema(gen.RNG(1), n, 2, 2)
		var clique *schema.Schema
		if n <= 64 {
			clique = gen.Clique(n)
		}
		rt := timeIt(func() { gyo.ReduceFull(ring) })
		tt := timeIt(func() { gyo.ReduceFull(tree) })
		ct := time.Duration(0)
		if clique != nil {
			ct = timeIt(func() { gyo.ReduceFull(clique) })
		}
		// Sanity: classification must be right at every size.
		if gyo.IsTree(ring) || !gyo.IsTree(tree) {
			return fmt.Errorf("misclassification at n=%d", n)
		}
		fmt.Fprintf(w, "%-8d %12v %12v %12v\n", n, rt, ct, tt)
	}
	return nil
}

// runPerf2: Theorem 3.3(ii) lets CC take the GR route on tree schemas;
// the generic route minimizes tableaux (NP-hard machinery). Both must
// agree; the table shows the separation.
func runPerf2(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %12s %14s\n", "n", "CC via GR", "CC via tableau")
	for _, n := range []int{4, 6, 8, 10, 12} {
		d := gen.TreeSchema(gen.RNG(int64(n)), n, 2, 2)
		x := gen.RandomAttrSubset(gen.RNG(int64(n)+100), d.Attrs(), 0.4)
		var fast, slow *schema.Schema
		ft := timeIt(func() { fast = tableau.CC(d, x) })
		st := timeIt(func() { slow = tableau.CCGeneric(d, x) })
		if !fast.SetEqual(slow) {
			return fmt.Errorf("CC disagreement at n=%d", n)
		}
		fmt.Fprintf(w, "%-8d %12v %14v\n", n, ft, st)
	}
	return nil
}

// runPerf4: end-to-end evaluation of (D, X) over UR databases on a
// chain schema: the naive full join, the CC-pruned join (Corollary
// 4.1), and the Yannakakis semijoin program (§6). All three must agree
// tuple-for-tuple; the interesting output is intermediate-result size.
func runPerf4(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-8s %14s %14s %14s\n", "tuples", "rels", "naive(max)", "cc(max)", "yann(max)")
	for _, tuples := range []int{50, 150, 400} {
		n := 5
		d := gen.Chain(n)
		attrs := d.Attrs().Attrs()
		// Target the front of the chain: GR(D, X) prunes the dangling
		// tail (relations past attrs[2]), so CC pruning is visible.
		x := schema.NewAttrSet(attrs[0], attrs[2])
		rng := rand.New(rand.NewSource(int64(tuples)))
		i, _ := relation.RandomUniversal(d.U, d.Attrs(), tuples, 8, rng)
		db := relation.URDatabase(d, i)

		naive, err := program.NaivePlan(d, x)
		if err != nil {
			return err
		}
		cc := tableau.CC(d, x)
		ccPlan, err := program.CCPlan(d, x, cc)
		if err != nil {
			return err
		}
		tr, _ := qualgraph.QualTree(d)
		yann, err := program.Yannakakis(d, x, tr)
		if err != nil {
			return err
		}

		r1, s1, err := naive.Eval(db)
		if err != nil {
			return err
		}
		r2, s2, err := ccPlan.Eval(db)
		if err != nil {
			return err
		}
		r3, s3, err := yann.Eval(db)
		if err != nil {
			return err
		}
		if !r1.Equal(r2) || !r1.Equal(r3) {
			return fmt.Errorf("plans disagree at %d tuples", tuples)
		}
		fmt.Fprintf(w, "%-10d %-8d %14d %14d %14d\n",
			tuples, n, s1.MaxIntermediate, s2.MaxIntermediate, s3.MaxIntermediate)
	}
	fmt.Fprintln(w, "(all three plans return identical answers; Yannakakis bounds intermediates)")
	return nil
}

// runPerf9: the §6 cost theorems as observable numbers. The Yannakakis
// program over a chain schema is run at growing scale and its
// per-statement breakdown printed: the semijoin (reducer) statements
// must stay bounded by their inputs, while tuples produced grow only
// linearly — the Theorem 6.1/6.4 behavior the columnar engine's
// Stats.Detail makes directly visible.
func runPerf9(w io.Writer) error {
	d := gen.Chain(5)
	attrs := d.Attrs().Attrs()
	x := schema.NewAttrSet(attrs[0], attrs[len(attrs)-1])
	tr, ok := qualgraph.QualTree(d)
	if !ok {
		return fmt.Errorf("chain schema rejected as cyclic")
	}
	plan, err := program.Yannakakis(d, x, tr)
	if err != nil {
		return err
	}
	for _, tuples := range []int{200, 2000, 20000} {
		i, _ := relation.RandomUniversal(d.U, d.Attrs(), tuples, 64, rand.New(rand.NewSource(int64(tuples))))
		db := relation.URDatabase(d, i)
		_, st, err := plan.Eval(db)
		if err != nil {
			return err
		}
		// Every semijoin must shrink (or keep) its left input, and the
		// totals must be internally consistent.
		sum := 0
		for _, dt := range st.Detail {
			if dt.Kind == program.Semijoin && dt.Out > dt.InLeft {
				return fmt.Errorf("semijoin grew its input: %+v", dt)
			}
			sum += dt.Out
		}
		if sum != st.TuplesProduced {
			return fmt.Errorf("Detail sums to %d, TuplesProduced %d", sum, st.TuplesProduced)
		}
		fmt.Fprintf(w, "--- Yannakakis on chain(5), %d universal tuples ---\n", tuples)
		fmt.Fprint(w, st.Table())
	}
	fmt.Fprintln(w, "(semijoin statements never exceed their inputs: the §6 full-reducer bound)")
	return nil
}

// runPerf5: both join-tree constructions, cross-checked, with timing.
func runPerf5(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %12s %12s\n", "n", "MST", "GYO trace")
	for _, n := range []int{8, 32, 128} {
		d := gen.TreeSchema(gen.RNG(int64(n)*7), n, 2, 2)
		mt := timeIt(func() {
			if _, ok := qualgraph.QualTreeMST(d); !ok {
				panic("tree schema rejected")
			}
		})
		gt := timeIt(func() {
			if _, ok := qualgraph.QualTreeGYO(d); !ok {
				panic("tree schema rejected")
			}
		})
		fmt.Fprintf(w, "%-8d %12v %12v\n", n, mt, gt)
	}
	return nil
}

// runPerf8: the §4 cyclic strategy end to end — on Arings, the plan
// that materializes ∪GR(D) (Corollary 3.2) and then runs the
// full-reducer + Yannakakis pipeline, against the naive multiway join.
// Both must agree; the table reports intermediate sizes.
func runPerf8(w io.Writer) error {
	fmt.Fprintf(w, "%-10s %-8s %14s %14s\n", "schema", "tuples", "naive(max)", "cyclic(max)")
	// The naive multiway join explodes combinatorially on this family
	// (it is the baseline being indicted), so the sweep stays small.
	for _, n := range []int{3} {
		for _, tuples := range []int{30, 60} {
			// Ring core with 2-hop tails off every ring attribute: the
			// cyclic core is a small fraction of the schema, so the §4
			// strategy (join the core once, semijoin the rest) wins.
			d := gen.RingWithTails(n, 2)
			// Target: one ring attribute plus a tail-end attribute.
			ringEdge := d.Rels[0].Attrs()
			lastTail := d.Rels[len(d.Rels)-1].Attrs()
			x := schema.NewAttrSet(ringEdge[0], lastTail[len(lastTail)-1])
			i, _ := relation.RandomUniversal(d.U, d.Attrs(), tuples, 6, rand.New(rand.NewSource(int64(n*tuples))))
			db := relation.URDatabase(d, i)

			naive, err := program.NaivePlan(d, x)
			if err != nil {
				return err
			}
			cyc, err := program.CyclicPlan(d, x)
			if err != nil {
				return err
			}
			r1, s1, err := naive.Eval(db)
			if err != nil {
				return err
			}
			r2, s2, err := cyc.Eval(db)
			if err != nil {
				return err
			}
			if !r1.Equal(r2) {
				return fmt.Errorf("cyclic strategy disagrees with naive join on ring-with-tails(%d)", n)
			}
			fmt.Fprintf(w, "ring%d+t2   %-8d %14d %14d\n", n, tuples, s1.MaxIntermediate, s2.MaxIntermediate)
		}
	}
	fmt.Fprintln(w, "(identical answers; the cyclic strategy pays the core join once, then semijoins)")
	return nil
}
