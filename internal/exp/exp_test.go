package exp

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every registered experiment; each one
// asserts the paper's claims internally.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no report", e.ID)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	want := []string{"fig1", "fig2", "fig45", "fig7", "perf1", "perf2", "perf4", "perf5", "perf8", "perf9", "sec32", "sec51", "sec6", "thm42"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"fig1", "thm42", "sec6"} {
		if !strings.Contains(out, "=== "+id) {
			t.Errorf("RunAll output missing section %s", id)
		}
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
