// Package tableau implements the tableau machinery of the paper's §3.4:
// the standard tableau Tab(D, X) for a natural-join query (D, X),
// containment mappings, tableau equivalence and isomorphism, tableau
// minimization, canonical schemas CS(D, X), and the canonical
// connection CC(D, X).
//
// Variables are encoded per attribute column: the distinguished
// variable a (paper's notation) for attribute A, the shared
// nondistinguished variable a′ used by every row whose schema contains
// A outside X, and unique nondistinguished padding variables for all
// other cells. Containment mappings are symbol-to-symbol mappings that
// fix distinguished variables and send every row onto a row of the
// target tableau; finding one is NP-hard in general, so the search is
// backtracking with candidate pruning, fine for the tableau sizes that
// arise from schemas (≲ 20 rows).
package tableau

import (
	"fmt"
	"sort"
	"strings"

	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

// Var is a tableau variable. For a universe of n attributes:
//
//	0 ≤ v < n    — distinguished variable for attribute v
//	n ≤ v < 2n   — the shared nondistinguished variable for attribute v−n
//	v ≥ 2n       — unique nondistinguished variables
type Var int32

// Tableau is a tableau over the full attribute universe: every row has
// one variable per attribute. Rows correspond to the relation schemas
// of the originating query.
type Tableau struct {
	U    *schema.Universe
	X    schema.AttrSet // summary: distinguished attributes
	Rows [][]Var
	// RowOrigin[i] is the index of the relation schema in the original
	// query that produced row i; preserved by Without/Minimize.
	RowOrigin []int

	n int // universe size at construction
}

// New constructs the standard tableau Tab(D, X) per §3.4 (i)–(iv).
// It panics if X ⊄ U(D): the query (D, X) would be ill-formed.
func New(d *schema.Schema, x schema.AttrSet) *Tableau {
	if !x.SubsetOf(d.Attrs()) {
		panic(fmt.Sprintf("tableau: target %s ⊄ U(D) %s",
			d.U.FormatSet(x), d.U.FormatSet(d.Attrs())))
	}
	n := d.U.Size()
	t := &Tableau{U: d.U, X: x.Clone(), n: n}
	next := Var(2 * n)
	for i, r := range d.Rels {
		row := make([]Var, n)
		for c := 0; c < n; c++ {
			a := schema.Attr(c)
			switch {
			case r.Has(a) && x.Has(a):
				row[c] = Var(c) // distinguished
			case r.Has(a):
				row[c] = Var(n + c) // shared nondistinguished
			default:
				row[c] = next
				next++
			}
		}
		t.Rows = append(t.Rows, row)
		t.RowOrigin = append(t.RowOrigin, i)
	}
	return t
}

// NumRows returns the number of rows.
func (t *Tableau) NumRows() int { return len(t.Rows) }

// Distinguished reports whether v is a distinguished variable.
func (t *Tableau) Distinguished(v Var) bool { return int(v) < t.n }

// Without returns the subtableau with the given row indexes removed.
func (t *Tableau) Without(rows ...int) *Tableau {
	drop := map[int]bool{}
	for _, r := range rows {
		drop[r] = true
	}
	out := &Tableau{U: t.U, X: t.X.Clone(), n: t.n}
	for i, row := range t.Rows {
		if !drop[i] {
			out.Rows = append(out.Rows, row)
			out.RowOrigin = append(out.RowOrigin, t.RowOrigin[i])
		}
	}
	return out
}

// Clone returns a deep copy.
func (t *Tableau) Clone() *Tableau {
	out := &Tableau{U: t.U, X: t.X.Clone(), n: t.n}
	for i, row := range t.Rows {
		out.Rows = append(out.Rows, append([]Var(nil), row...))
		out.RowOrigin = append(out.RowOrigin, t.RowOrigin[i])
	}
	return out
}

// String renders the tableau for debugging; distinguished variables
// print as the attribute name, shared ones with a prime, unique ones as
// u<k>.
func (t *Tableau) String() string {
	var b strings.Builder
	for i, row := range t.Rows {
		fmt.Fprintf(&b, "r%d:", t.RowOrigin[i])
		for c, v := range row {
			switch {
			case int(v) < t.n:
				fmt.Fprintf(&b, " %s", t.U.Name(schema.Attr(c)))
			case int(v) < 2*t.n:
				fmt.Fprintf(&b, " %s'", t.U.Name(schema.Attr(c)))
			default:
				fmt.Fprintf(&b, " u%d", int(v)-2*t.n)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Containment searches for a containment mapping from src to dst: a
// symbol mapping fixing distinguished variables under which every row
// of src becomes a row of dst. It returns the row assignment
// (src row index → dst row index) and whether one exists. Both tableaux
// must share a universe and target X.
func Containment(src, dst *Tableau) (rowMap []int, ok bool) {
	if src.U != dst.U || !src.X.Equal(dst.X) {
		panic("tableau: containment across different universes or targets")
	}
	m := len(src.Rows)
	if m == 0 {
		return nil, true
	}
	if len(dst.Rows) == 0 {
		return nil, false
	}
	n := src.n
	// Candidate rows: dst rows matching all distinguished cells of the
	// src row (a distinguished variable must map to itself).
	cands := make([][]int, m)
	for i, row := range src.Rows {
		for j, drow := range dst.Rows {
			okCand := true
			for c := 0; c < n; c++ {
				if int(row[c]) < n && drow[c] != row[c] {
					okCand = false
					break
				}
			}
			if okCand {
				cands[i] = append(cands[i], j)
			}
		}
		if len(cands[i]) == 0 {
			return nil, false
		}
	}
	// Order rows by fewest candidates (fail-first).
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(cands[order[a]]) < len(cands[order[b]]) })

	h := make(map[Var]Var)
	assign := make([]int, m)
	var bt func(k int) bool
	bt = func(k int) bool {
		if k == m {
			return true
		}
		i := order[k]
		row := src.Rows[i]
	next:
		for _, j := range cands[i] {
			drow := dst.Rows[j]
			var bound []Var
			for c := 0; c < n; c++ {
				v := row[c]
				if int(v) < n {
					continue // distinguished, already matched
				}
				if w, exists := h[v]; exists {
					if w != drow[c] {
						for _, b := range bound {
							delete(h, b)
						}
						continue next
					}
				} else {
					h[v] = drow[c]
					bound = append(bound, v)
				}
			}
			assign[i] = j
			if bt(k + 1) {
				return true
			}
			for _, b := range bound {
				delete(h, b)
			}
		}
		return false
	}
	if !bt(0) {
		return nil, false
	}
	return assign, true
}

// Contains reports whether a containment mapping src → dst exists.
func Contains(src, dst *Tableau) bool {
	_, ok := Containment(src, dst)
	return ok
}

// Equivalent reports tableau equivalence: containment mappings in both
// directions (the paper's T ≡ T′).
func Equivalent(a, b *Tableau) bool {
	return Contains(a, b) && Contains(b, a)
}

// Isomorphic reports the paper's T ≃ T′: equal row counts with
// row-injective containment mappings in both directions.
func Isomorphic(a, b *Tableau) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	return injectiveContainment(a, b) && injectiveContainment(b, a)
}

func injectiveContainment(src, dst *Tableau) bool {
	// Same search as Containment but with used-row bookkeeping.
	if src.U != dst.U || !src.X.Equal(dst.X) {
		panic("tableau: containment across different universes or targets")
	}
	m := len(src.Rows)
	n := src.n
	cands := make([][]int, m)
	for i, row := range src.Rows {
		for j, drow := range dst.Rows {
			okCand := true
			for c := 0; c < n; c++ {
				if int(row[c]) < n && drow[c] != row[c] {
					okCand = false
					break
				}
			}
			if okCand {
				cands[i] = append(cands[i], j)
			}
		}
		if len(cands[i]) == 0 {
			return false
		}
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(cands[order[a]]) < len(cands[order[b]]) })
	h := make(map[Var]Var)
	used := make([]bool, len(dst.Rows))
	var bt func(k int) bool
	bt = func(k int) bool {
		if k == m {
			return true
		}
		i := order[k]
		row := src.Rows[i]
	next:
		for _, j := range cands[i] {
			if used[j] {
				continue
			}
			drow := dst.Rows[j]
			var bound []Var
			for c := 0; c < n; c++ {
				v := row[c]
				if int(v) < n {
					continue
				}
				if w, exists := h[v]; exists {
					if w != drow[c] {
						for _, b := range bound {
							delete(h, b)
						}
						continue next
					}
				} else {
					h[v] = drow[c]
					bound = append(bound, v)
				}
			}
			used[j] = true
			if bt(k + 1) {
				return true
			}
			used[j] = false
			for _, b := range bound {
				delete(h, b)
			}
		}
		return false
	}
	return bt(0)
}

// Minimize returns a minimal tableau equivalent to t, computed by
// greedily removing rows r for which a containment mapping
// t → t−{r} exists. Greedy removal is sound because minimal tableaux
// are unique up to isomorphism (Lemma 3.4): the fixpoint of row
// removal is the core.
func (t *Tableau) Minimize() *Tableau {
	cur := t.Clone()
	for {
		removed := false
		for r := 0; r < len(cur.Rows); r++ {
			cand := cur.Without(r)
			if Contains(cur, cand) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// CanonicalSchema computes CS of the given tableau (paper §3.4): for
// each row rᵢ the relation schema
//
//	Rᵢ = {A | rᵢ[A] is distinguished, or rᵢ[A] occurs in another row}
//
// and the result is the reduction of (R₁, …).
func CanonicalSchema(t *Tableau) *schema.Schema {
	n := t.n
	// Count occurrences of each variable across rows (a variable occurs
	// at most once per row, in its own column).
	occ := map[Var]int{}
	for _, row := range t.Rows {
		for c := 0; c < n; c++ {
			occ[row[c]]++
		}
	}
	d := &schema.Schema{U: t.U}
	for _, row := range t.Rows {
		r := schema.NewAttrSet()
		for c := 0; c < n; c++ {
			v := row[c]
			if int(v) < n || occ[v] > 1 {
				r = r.Add(schema.Attr(c))
			}
		}
		d.Add(r)
	}
	return d.Reduce()
}

// CC computes the canonical connection CC(D, X): the canonical schema
// of a minimal tableau for (D, X) (§3.4). When D is a tree schema it
// uses the Theorem 3.3(ii) fast path CC(D, X) = GR(D, X); otherwise it
// minimizes the tableau. CCGeneric always takes the tableau route.
func CC(d *schema.Schema, x schema.AttrSet) *schema.Schema {
	if gyo.IsTree(d) {
		return grAsCC(d, x)
	}
	return CCGeneric(d, x)
}

// grAsCC returns GR(D, X) post-processed exactly like a canonical
// schema: reduced. (GR is already reduced; Reduce also normalizes away
// an empty relation schema paired with non-empty ones.)
func grAsCC(d *schema.Schema, x schema.AttrSet) *schema.Schema {
	return gyo.Reduce(d, x).GR.Reduce()
}

// CCGeneric computes CC(D, X) by tableau minimization, with no
// tree-schema shortcut. Exponential in the worst case; intended for
// |D| ≲ 20.
func CCGeneric(d *schema.Schema, x schema.AttrSet) *schema.Schema {
	t := New(d, x)
	return CanonicalSchema(t.Minimize())
}

// QueriesEquivalent decides (D, X) ≡ (D′, X) — weak equivalence over
// all universal databases — via Lemma 3.2: Tab(D, X) ≡ Tab(D′, X).
// Both schemas must share a universe; X must be ⊆ U(D) ∩ U(D′).
func QueriesEquivalent(d, dp *schema.Schema, x schema.AttrSet) bool {
	return Equivalent(New(d, x), New(dp, x))
}

// QueryContained decides (D, X) ⊒ (D′, X) in the weak-containment
// sense used by the paper's proofs: a containment mapping from
// Tab(D, X) to Tab(D′, X) witnesses Q′ ⊆ Q on universal databases.
func QueryContained(d, dp *schema.Schema, x schema.AttrSet) bool {
	return Contains(New(d, x), New(dp, x))
}
