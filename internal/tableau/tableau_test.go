package tableau

import (
	"math/rand"
	"strings"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/schema"
)

func parse(t *testing.T, u *schema.Universe, s string) *schema.Schema {
	t.Helper()
	d, err := schema.Parse(u, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStandardTableauShape(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	x := u.Set("a", "c")
	tab := New(d, x)
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	a, _ := u.Lookup("a")
	b, _ := u.Lookup("b")
	c, _ := u.Lookup("c")
	// Row 0 (ab): a distinguished, b shared, c unique.
	if !tab.Distinguished(tab.Rows[0][a]) {
		t.Error("a should be distinguished in row 0")
	}
	if tab.Rows[0][b] != Var(u.Size()+int(b)) {
		t.Error("b should be the shared nondistinguished variable in row 0")
	}
	if int(tab.Rows[0][c]) < 2*u.Size() {
		t.Error("c should be unique in row 0")
	}
	// Shared variable is identical across rows containing b.
	if tab.Rows[0][b] != tab.Rows[1][b] {
		t.Error("shared variable differs between rows")
	}
	// Unique variables differ between rows.
	if tab.Rows[0][c] == tab.Rows[1][a] {
		t.Error("unique variables should be distinct")
	}
	if !strings.Contains(tab.String(), "b'") {
		t.Error("String should show shared variables")
	}
}

func TestNewPanicsOnBadTarget(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab")
	u.Attr("z")
	defer func() {
		if recover() == nil {
			t.Error("X ⊄ U(D) should panic")
		}
	}()
	New(d, u.Set("z"))
}

func TestContainmentBasics(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	x := u.Set("a", "b", "c")
	tab := New(d, x)
	// The subtableau {abc} absorbs everything: rows ab and bc map onto
	// row abc (all their variables are distinguished on their schema).
	sub := tab.Without(1, 2)
	if !Contains(tab, sub) {
		t.Error("rows ab, bc should map into row abc")
	}
	if !Contains(sub, tab) {
		t.Error("subtableau trivially maps into its supertableau")
	}
	if !Equivalent(tab, sub) {
		t.Error("equivalence expected")
	}
	// But {ab, bc} cannot absorb row abc: no row has all three
	// distinguished variables.
	sub2 := tab.Without(0)
	if Contains(tab, sub2) {
		t.Error("row abc must not map into {ab, bc}")
	}
}

func TestMinimizeSection51(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	x := d.Attrs()
	min := New(d, x).Minimize()
	if min.NumRows() != 1 {
		t.Fatalf("minimal tableau rows = %d, want 1", min.NumRows())
	}
	if min.RowOrigin[0] != 0 {
		t.Errorf("surviving row should be abc (origin 0), got %d", min.RowOrigin[0])
	}
	cc := CanonicalSchema(min)
	if cc.String() != "(abc)" {
		t.Errorf("CC = %s, want (abc)", cc)
	}
}

// TestSection6Example reproduces the §6 worked example:
// D = (abg, bcg, acf, ad, de, ea), Q = (D, abc). CC(D, abc) must be
// (abg, bcg, ac): relations ad, de, ea are irrelevant and the f column
// is projected out.
func TestSection6Example(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	cc := CCGeneric(d, x)
	want := parse(t, u, "abg, bcg, ac")
	if !cc.SetEqual(want) {
		t.Fatalf("CC(D, abc) = %s, want %s", cc, want)
	}
	// D is cyclic (ad—de—ea ring), so this exercised true minimization.
	if gyo.IsTree(d) {
		t.Error("example schema should be cyclic")
	}
	// CC must also be ≤ GR(D, X) (Theorem 3.3(i)).
	gr := gyo.Reduce(d, x).GR
	if !cc.LE(gr) {
		t.Errorf("CC = %s ⊀ GR = %s", cc, gr)
	}
}

func TestIsomorphic(t *testing.T) {
	u := schema.NewUniverse()
	d1 := parse(t, u, "ab, bc")
	d2 := parse(t, u, "bc, ab") // same rows, different order
	x := u.Set("a", "c")
	if !Isomorphic(New(d1, x), New(d2, x)) {
		t.Error("reordered tableaux should be isomorphic")
	}
	d3 := parse(t, u, "ab, bc, ca")
	if Isomorphic(New(d1, x), New(d3, x)) {
		t.Error("different row counts cannot be isomorphic")
	}
	// Equivalent but not isomorphic: (abc) vs (abc, ab).
	d4 := parse(t, u, "abc")
	d5 := parse(t, u, "abc, ab")
	x2 := u.Set("a", "b", "c")
	if !Equivalent(New(d4, x2), New(d5, x2)) {
		t.Error("should be equivalent")
	}
	if Isomorphic(New(d4, x2), New(d5, x2)) {
		t.Error("should not be isomorphic")
	}
}

// TestLemma34 verifies: two minimal tableaux for the same query are
// isomorphic — via randomized row-order shuffles.
func TestLemma34(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.5)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.5)
		m1 := New(d, x).Minimize()
		// Shuffle relation order, re-minimize.
		perm := rng.Perm(len(d.Rels))
		d2 := d.Restrict(perm)
		m2 := New(d2, x).Minimize()
		if m1.NumRows() != m2.NumRows() {
			t.Fatalf("minimal sizes differ: %d vs %d for %s", m1.NumRows(), m2.NumRows(), d)
		}
		if !Isomorphic(m1, m2) {
			t.Fatalf("minimal tableaux not isomorphic for %s", d)
		}
		// Lemma 3.3(i): isomorphic tableaux have equal canonical schemas.
		if !CanonicalSchema(m1).SetEqual(CanonicalSchema(m2)) {
			t.Fatalf("CS differs across isomorphic minima for %s", d)
		}
	}
}

// TestTheorem33TreeFastPath: on tree schemas CC(D,X) = GR(D,X)
// (Theorem 3.3(ii)) — the generic tableau route must agree with the
// GYO route.
func TestTheorem33TreeFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		d := gen.TreeSchema(rng, 1+rng.Intn(5), 2, 2)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.5)
		generic := CCGeneric(d, x)
		viaGR := CC(d, x) // takes the fast path
		if !generic.SetEqual(viaGR) {
			t.Fatalf("CC mismatch on tree schema %s X=%s: generic=%s gr=%s",
				d, d.U.FormatSet(x), generic, viaGR)
		}
	}
}

// TestTheorem33i: CC(D, X) ≤ GR(D, X) for arbitrary schemas.
func TestTheorem33i(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.5)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.4)
		cc := CCGeneric(d, x)
		gr := gyo.Reduce(d, x).GR
		if !cc.LE(gr) {
			t.Fatalf("CC(%s, %s) = %s ⊀ GR = %s", d, d.U.FormatSet(x), cc, gr)
		}
	}
}

// TestTheorem33iii: if ∪GR(D,X) ⊆ X then CC(D,X) = GR(D,X).
func TestTheorem33iii(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	checked := 0
	for trial := 0; trial < 400 && checked < 25; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.6)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.7)
		gr := gyo.Reduce(d, x).GR
		if !gr.Attrs().SubsetOf(x) {
			continue
		}
		checked++
		cc := CCGeneric(d, x)
		if !cc.SetEqual(gr.Reduce()) {
			t.Fatalf("Theorem 3.3(iii) failed: D=%s X=%s CC=%s GR=%s",
				d, d.U.FormatSet(x), cc, gr)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d qualifying cases", checked)
	}
}

// TestLemma35 via Theorem 4.1 machinery: (D,X) ≡ (D′,X) iff
// CC(D,X) = CC(D′,X), exercised with D′ = CC(D, X) itself, which the
// paper proves equivalent ((i) ⇒ (ii) of Theorem 4.1).
func TestLemma35SelfCC(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.5)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.5)
		cc := CCGeneric(d, x)
		if cc.Len() == 0 {
			continue
		}
		if !x.SubsetOf(cc.Attrs()) {
			// (CC, X) would be ill-formed; skip (can happen when X has
			// attributes occurring in no minimal row — e.g. X = ∅ cases).
			continue
		}
		if !QueriesEquivalent(d, cc, x) {
			t.Fatalf("(D,X) ≢ (CC,X): D=%s CC=%s X=%s", d, cc, d.U.FormatSet(x))
		}
		cc2 := CCGeneric(cc, x)
		if !cc2.SetEqual(cc) {
			t.Fatalf("CC not idempotent: CC=%s CC(CC)=%s", cc, cc2)
		}
	}
}

func TestQueryContainedDirection(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	dp := parse(t, u, "ab, bc")
	x := u.Set("a", "b", "c")
	// Tab(D,X) → Tab(D′,X) exists iff Q′ ⊆ Q; dropping the abc row
	// loses that containment.
	if QueryContained(d, dp, x) {
		t.Error("Tab(D) should not map into Tab(D') here")
	}
	if !QueryContained(dp, d, x) {
		t.Error("Tab(D') should map into Tab(D)")
	}
}

func TestEmptyTableaux(t *testing.T) {
	u := schema.NewUniverse()
	u.Attr("a")
	empty := &schema.Schema{U: u}
	te := New(empty, schema.AttrSet{})
	if te.NumRows() != 0 {
		t.Error("empty schema should give empty tableau")
	}
	d := parse(t, u, "ab")
	td := New(d, schema.AttrSet{})
	if !Contains(te, td) {
		t.Error("empty tableau maps into anything")
	}
	if Contains(td, te) {
		t.Error("nonempty cannot map into empty")
	}
	if CanonicalSchema(te).Len() != 0 {
		t.Error("CS of empty tableau should be empty")
	}
}

func TestMinimizePreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(5), 2+rng.Intn(4), 0.5)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.5)
		tab := New(d, x)
		min := tab.Minimize()
		if !Equivalent(tab, min) {
			t.Fatalf("minimization broke equivalence for %s", d)
		}
		// No further row is removable.
		for r := 0; r < min.NumRows(); r++ {
			if Contains(min, min.Without(r)) {
				t.Fatalf("minimal tableau still reducible for %s", d)
			}
		}
	}
}

func TestContainmentPanicsAcrossUniverses(t *testing.T) {
	u1, u2 := schema.NewUniverse(), schema.NewUniverse()
	d1 := parse(t, u1, "ab")
	d2 := parse(t, u2, "ab")
	defer func() {
		if recover() == nil {
			t.Error("cross-universe containment should panic")
		}
	}()
	Contains(New(d1, schema.AttrSet{}), New(d2, schema.AttrSet{}))
}
