package core

import (
	"fmt"

	"gyokit/internal/schema"
	"gyokit/internal/tableau"
)

// MinimalEquivalentSubschemas returns every minimum-cardinality
// sub-multiset D′ of D's relation schemas with (D, X) ≡ (D′, X) —
// the setting of Theorem 5.2 and Corollary 5.3 (and of Yannakakis
// [18], who considered D′ ⊆ D). By Theorem 4.1 the equivalence is
// exactly CC(D, X) ≤ D′, so the search reduces to minimum set cover
// of the CC members by relations of D, solved exactly (exponential in
// |D|; intended for |D| ≤ 15).
func MinimalEquivalentSubschemas(d *schema.Schema, x schema.AttrSet) ([]*schema.Schema, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if !x.SubsetOf(d.Attrs()) {
		return nil, fmt.Errorf("core: target ⊄ U(D)")
	}
	if len(d.Rels) > 20 {
		return nil, fmt.Errorf("core: MinimalEquivalentSubschemas limited to |D| ≤ 20 (got %d)", len(d.Rels))
	}
	cc := tableau.CC(d, x)
	n := len(d.Rels)
	// covers[i] = bitmask of CC members contained in relation i.
	m := cc.Len()
	covers := make([]uint32, n)
	for i, r := range d.Rels {
		for j, c := range cc.Rels {
			if c.SubsetOf(r) {
				covers[i] |= 1 << j
			}
		}
	}
	full := uint32(1)<<m - 1
	var out []*schema.Schema
	for size := 1; size <= n; size++ {
		found := enumerateCovers(d, covers, full, size, &out)
		if found {
			return out, nil
		}
	}
	if m == 0 {
		// Degenerate: empty CC — no relations needed.
		return []*schema.Schema{{U: d.U}}, nil
	}
	return nil, fmt.Errorf("core: internal: CC members not coverable by D")
}

// enumerateCovers appends every size-k subset of D whose relations
// jointly cover all CC members; reports whether any was found.
func enumerateCovers(d *schema.Schema, covers []uint32, full uint32, k int, out *[]*schema.Schema) bool {
	n := len(d.Rels)
	idx := make([]int, 0, k)
	found := false
	var rec func(start int, got uint32)
	rec = func(start int, got uint32) {
		if len(idx) == k {
			if got == full {
				*out = append(*out, d.Restrict(append([]int(nil), idx...)))
				found = true
			}
			return
		}
		// Prune: not enough relations left.
		if n-start < k-len(idx) {
			return
		}
		for i := start; i < n; i++ {
			idx = append(idx, i)
			rec(i+1, got|covers[i])
			idx = idx[:len(idx)-1]
		}
	}
	rec(0, 0)
	return found
}
