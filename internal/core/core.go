// Package core is the theorem-level face of the library: it wires the
// GYO, qual-graph, tableau, lossless-join, γ-acyclicity, program, and
// tree-projection machinery into the analyses the paper is about —
// classifying schemas (§3), solving queries with joins (§4), deciding
// lossless joins (§5), and analyzing join/semijoin/project programs
// through tree projections (§6).
package core

import (
	"fmt"

	"gyokit/internal/gamma"
	"gyokit/internal/graph"
	"gyokit/internal/gyo"
	"gyokit/internal/lossless"
	"gyokit/internal/program"
	"gyokit/internal/qualgraph"
	"gyokit/internal/schema"
	"gyokit/internal/tableau"
	"gyokit/internal/treeproj"
)

// Classification is the full §3 status of a database schema.
type Classification struct {
	// Tree reports whether D is a tree schema (Corollary 3.1).
	Tree bool
	// GammaAcyclic reports γ-acyclicity (Theorem 5.3(ii) test).
	GammaAcyclic bool
	// GR is GR(D), the GYO reduction with no sacred attributes.
	GR *schema.Schema
	// TreefyingRelation is ∪GR(D): the least-cardinality relation
	// schema whose addition makes D a tree schema (Corollary 3.2).
	// Empty for tree schemas.
	TreefyingRelation schema.AttrSet
	// QualTree is a qual tree for D when Tree, else nil.
	QualTree *graph.Undirected
}

// Classify computes the classification of d.
func Classify(d *schema.Schema) (*Classification, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	res := gyo.ReduceFull(d)
	c := &Classification{
		Tree:              res.Empty(),
		GammaAcyclic:      gamma.IsGammaAcyclic(d),
		GR:                res.GR,
		TreefyingRelation: res.GR.Attrs(),
	}
	if c.Tree {
		t, ok := qualgraph.QualTree(d)
		if !ok {
			return nil, fmt.Errorf("core: internal: GYO and qual-tree construction disagree on %s", d)
		}
		c.QualTree = t
	}
	return c, nil
}

// CyclicityWitness is the Lemma 3.1 certificate of cyclicity.
type CyclicityWitness struct {
	X    schema.AttrSet // attributes deleted
	Core *schema.Schema // the exposed Aring or Aclique
	Kind schema.CoreKind
}

// CyclicityCertificate searches for the Lemma 3.1 witness of d's
// cyclicity. found is false iff d is a tree schema. Exponential in
// |U(D)|; intended for universes of ≤ 20 attributes.
func CyclicityCertificate(d *schema.Schema) (*CyclicityWitness, bool) {
	x, coreSchema, kind, found := schema.Lemma31Witness(d)
	if !found {
		return nil, false
	}
	return &CyclicityWitness{X: x, Core: coreSchema, Kind: kind}, true
}

// JoinSolution is the §4 answer for solving (D, X) with joins followed
// by one projection.
type JoinSolution struct {
	// CC is the canonical connection CC(D, X): by Theorem 4.1 the
	// minimal relation set whose join answers the query on UR
	// databases.
	CC *schema.Schema
	// Plan is the Corollary 4.1 plan: pre-project sources onto CC
	// members, join, project onto X.
	Plan *program.Program
	// Sources[i] is the index in D of the relation backing CC member i.
	Sources []int
	// Irrelevant lists indexes of D not needed by the plan.
	Irrelevant []int
}

// SolveByJoins computes CC(D, X) and the join plan of Corollary 4.1.
func SolveByJoins(d *schema.Schema, x schema.AttrSet) (*JoinSolution, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if !x.SubsetOf(d.Attrs()) {
		return nil, fmt.Errorf("core: target %s ⊄ U(D)", d.U.FormatSet(x))
	}
	cc := tableau.CC(d, x)
	if cc.Len() == 0 {
		return nil, fmt.Errorf("core: empty canonical connection (degenerate query)")
	}
	plan, err := program.CCPlan(d, x, cc)
	if err != nil {
		return nil, err
	}
	sol := &JoinSolution{CC: cc, Plan: plan}
	used := map[int]bool{}
	for _, m := range cc.Rels {
		for i, r := range d.Rels {
			if m.SubsetOf(r) {
				sol.Sources = append(sol.Sources, i)
				used[i] = true
				break
			}
		}
	}
	for i := range d.Rels {
		if !used[i] {
			sol.Irrelevant = append(sol.Irrelevant, i)
		}
	}
	return sol, nil
}

// SufficientSubschema reports whether joining the relations of D′ ≤ D
// (then projecting onto X) solves (D, X) on every UR database —
// Theorem 4.1: CC(D, X) ≤ D′.
func SufficientSubschema(d, dprime *schema.Schema, x schema.AttrSet) (bool, error) {
	if !dprime.LE(d) {
		return false, fmt.Errorf("core: D′ ⊀ D")
	}
	if !x.SubsetOf(d.Attrs()) {
		return false, fmt.Errorf("core: target ⊄ U(D)")
	}
	return tableau.CC(d, x).LE(dprime), nil
}

// LosslessReport is the §5 lossless-join analysis of D′ against D.
type LosslessReport struct {
	// Holds is ⋈D ⊨ ⋈D′ (Theorem 5.1).
	Holds bool
	// CC is CC(D, ∪D′), the certificate schema.
	CC *schema.Schema
	// SubtreeApplicable/Subtree report the Corollary 5.2 view when D is
	// a tree schema and D′ ⊆ D.
	SubtreeApplicable bool
	Subtree           bool
}

// LosslessJoin decides ⋈D ⊨ ⋈D′ and reports the certificates.
func LosslessJoin(d, dprime *schema.Schema) (*LosslessReport, error) {
	if !dprime.LE(d) {
		return nil, fmt.Errorf("core: D′ = %s ⊀ D = %s", dprime, d)
	}
	rep := &LosslessReport{
		Holds: lossless.Implies(d, dprime),
		CC:    tableau.CC(d, dprime.Attrs()),
	}
	if holds, ok := lossless.ImpliesSubtree(d, dprime); ok {
		rep.SubtreeApplicable = true
		rep.Subtree = holds
		if holds != rep.Holds {
			return nil, fmt.Errorf("core: internal: Corollary 5.2 disagrees with Theorem 5.1 on %s vs %s", d, dprime)
		}
	}
	return rep, nil
}

// ProgramAnalysis is the §6 view of a program against query (D, X).
type ProgramAnalysis struct {
	// PD is P(D): the schema mapping of the program.
	PD *schema.Schema
	// CC is CC(D, X).
	CC *schema.Schema
	// TPWrtD is the Theorem 6.1/6.3 search: a tree projection of P(D)
	// wrt D ∪ (X).
	TPWrtD treeproj.Result
	// TPWrtCC is the Theorem 6.2/6.4 (UR-specialized) search: a tree
	// projection of P(D) wrt CC(D, X) ∪ (X).
	TPWrtCC treeproj.Result
	// SemijoinBudget is the Theorem 6.1 bound on the extra semijoins
	// needed once a tree projection exists: 2·|D| (2·|CC| for the UR
	// case).
	SemijoinBudget int
}

// AnalyzeProgram runs the §6 tree-projection analysis of p against the
// query (p.D, x). A Found result in TPWrtCC certifies (Theorem 6.2)
// that p plus at most 2·|CC| semijoins solves the query on UR
// databases; by Theorem 6.4 a program that solves the query must make
// TPWrtCC.Found true (relative to the search pool — see treeproj).
func AnalyzeProgram(p *program.Program, x schema.AttrSet) (*ProgramAnalysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !x.SubsetOf(p.D.Attrs()) {
		return nil, fmt.Errorf("core: target ⊄ U(D)")
	}
	pd := p.SchemaMap()
	cc := tableau.CC(p.D, x)
	return &ProgramAnalysis{
		PD:             pd,
		CC:             cc,
		TPWrtD:         treeproj.ExistsWrtQuery(pd, p.D, x),
		TPWrtCC:        treeproj.ExistsWrtQuery(pd, cc, x),
		SemijoinBudget: 2 * cc.Len(),
	}, nil
}

// TreePlan builds the tree-schema query plan for (D, X): a full
// reducer followed by Yannakakis-style joins. It errors when D is
// cyclic (the §4 strategy then calls for treefication first — see
// Classify.TreefyingRelation and package treefy).
func TreePlan(d *schema.Schema, x schema.AttrSet) (*program.Program, error) {
	t, ok := qualgraph.QualTree(d)
	if !ok {
		return nil, fmt.Errorf("core: %s is a cyclic schema; treefy first (Corollary 3.2 suggests adding %s)",
			d, d.U.FormatSet(gyo.TreefyingRelation(d)))
	}
	return program.Yannakakis(d, x, t)
}

// Prepare classifies d and compiles the plan for (d, x) in one pass —
// the unit of work the serving layer caches per (schema, target). On
// tree schemas the Yannakakis build reuses the classification's qual
// tree instead of re-deriving it; cyclic schemas take the §4 strategy.
func Prepare(d *schema.Schema, x schema.AttrSet) (*Classification, *program.Program, error) {
	// Reject bad targets before the expensive classification, so
	// repeated invalid queries (which the serving layer cannot cache)
	// stay cheap.
	if !x.SubsetOf(d.Attrs()) {
		return nil, nil, fmt.Errorf("core: target %s ⊄ U(D)", d.U.FormatSet(x))
	}
	cls, err := Classify(d)
	if err != nil {
		return nil, nil, err
	}
	var p *program.Program
	if cls.Tree {
		p, err = program.Yannakakis(d, x, cls.QualTree)
	} else {
		p, err = program.CyclicPlan(d, x)
	}
	if err != nil {
		return nil, nil, err
	}
	return cls, p, nil
}

// Plan builds a query plan for (D, X) on any schema, following §4:
// tree schemas get the full-reducer + Yannakakis program; cyclic
// schemas are first treefied by materializing ∪GR(D) (Corollary 3.2)
// and then solved as trees. The returned program runs against
// databases for the original D.
func Plan(d *schema.Schema, x schema.AttrSet) (*program.Program, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return program.CyclicPlan(d, x)
}
