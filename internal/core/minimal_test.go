package core

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/lossless"
	"gyokit/internal/schema"
	"gyokit/internal/tableau"
)

func TestMinimalEquivalentSection6(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	mins, err := MinimalEquivalentSubschemas(d, x)
	if err != nil {
		t.Fatal(err)
	}
	if len(mins) == 0 {
		t.Fatal("no minimal subschema found")
	}
	for _, dp := range mins {
		if dp.Len() != 3 {
			t.Errorf("minimal size = %d, want 3 (abg, bcg, acf)", dp.Len())
		}
		if !tableau.QueriesEquivalent(d, dp, x) {
			t.Errorf("claimed minimum %s not equivalent", dp)
		}
	}
}

// TestTheorem52: for every minimum-cardinality D′ ⊆ D with
// (D, X) ≡ (D′, X), CC(D, ∪D′) = D′ (up to reduction); and by
// Corollary 5.3, ⋈D ⊨ ⋈D′.
func TestTheorem52(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		var d *schema.Schema
		if trial%2 == 0 {
			d = gen.RandomSchema(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.5)
		} else {
			d = gen.TreeSchema(rng, 2+rng.Intn(4), 2, 2)
		}
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.5)
		if x.IsEmpty() {
			x = schema.NewAttrSet(d.Attrs().Min())
		}
		mins, err := MinimalEquivalentSubschemas(d, x)
		if err != nil {
			t.Fatal(err)
		}
		for _, dp := range mins {
			if dp.Len() == 0 {
				continue
			}
			// Theorem 5.2: CC(D, ∪D′) = D′. Our D′ is a sub-multiset of
			// D and need not be reduced when members repeat, so compare
			// reduced forms (the theorem's D′ is minimal, hence reduced).
			cc := tableau.CC(d, dp.Attrs())
			if !cc.SetEqual(dp.Reduce()) {
				t.Fatalf("Theorem 5.2 failed: D=%s X=%s D'=%s CC(D,∪D')=%s",
					d, d.U.FormatSet(x), dp, cc)
			}
			// Corollary 5.3: the minimal subschema has a lossless join.
			if !lossless.Implies(d, dp) {
				t.Fatalf("Corollary 5.3 failed: D=%s D'=%s", d, dp)
			}
		}
	}
}

// TestTheorem41Random: the three conditions of Theorem 4.1 coincide on
// random sub-multisets: CC(D,X) ≤ D′ ⇔ (D,X) ≡ (D′,X) ⇔
// CC(D,X) = CC(D′,X).
func TestTheorem41Random(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 60; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(3), 2+rng.Intn(4), 0.5)
		dp, _ := gen.SubSchema(rng, d)
		x := gen.RandomAttrSubset(rng, dp.Attrs().Intersect(d.Attrs()), 0.6)
		if x.IsEmpty() || !x.SubsetOf(dp.Attrs()) {
			continue
		}
		cc := tableau.CCGeneric(d, x)
		condI := cc.LE(dp)
		condII := tableau.QueriesEquivalent(d, dp, x)
		ccP := tableau.CCGeneric(dp, x)
		condIII := cc.SetEqual(ccP)
		if condI != condII || condII != condIII {
			t.Fatalf("Theorem 4.1 failed on D=%s D'=%s X=%s: (i)=%v (ii)=%v (iii)=%v",
				d, dp, d.U.FormatSet(x), condI, condII, condIII)
		}
	}
}

func TestMinimalEquivalentErrors(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab")
	u.Attr("z")
	if _, err := MinimalEquivalentSubschemas(d, u.Set("z")); err == nil {
		t.Error("bad target accepted")
	}
	if _, err := MinimalEquivalentSubschemas(&schema.Schema{}, schema.AttrSet{}); err == nil {
		t.Error("nil universe accepted")
	}
	big := gen.TreeSchema(gen.RNG(1), 25, 2, 2)
	if _, err := MinimalEquivalentSubschemas(big, schema.NewAttrSet(big.Attrs().Min())); err == nil {
		t.Error("oversized schema accepted")
	}
}
