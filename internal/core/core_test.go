package core

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/program"
	"gyokit/internal/qualgraph"
	"gyokit/internal/relation"
	"gyokit/internal/schema"
)

func parse(t *testing.T, u *schema.Universe, s string) *schema.Schema {
	t.Helper()
	d, err := schema.Parse(u, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestClassify(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc, cd")
	c, err := Classify(d)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Tree || !c.GammaAcyclic || c.QualTree == nil {
		t.Errorf("chain classification wrong: %+v", c)
	}
	if !c.TreefyingRelation.IsEmpty() {
		t.Error("tree schema needs no treefying relation")
	}

	ring := parse(t, u, "ab, bc, ca, cd")
	c2, err := Classify(ring)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Tree || c2.GammaAcyclic || c2.QualTree != nil {
		t.Errorf("ring classification wrong: %+v", c2)
	}
	if got := u.FormatSet(c2.TreefyingRelation); got != "abc" {
		t.Errorf("treefying relation = %s, want abc", got)
	}
	// The §5.1 schema: tree but not γ-acyclic.
	mid := parse(t, u, "abc, ab, bc")
	c3, _ := Classify(mid)
	if !c3.Tree || c3.GammaAcyclic {
		t.Errorf("(abc,ab,bc) should be tree but not γ-acyclic: %+v", c3)
	}
	// Invalid schema errors.
	if _, err := Classify(&schema.Schema{}); err == nil {
		t.Error("nil universe accepted")
	}
}

func TestCyclicityCertificate(t *testing.T) {
	u := schema.NewUniverse()
	ring := parse(t, u, "ab, bc, ca")
	w, found := CyclicityCertificate(ring)
	if !found || w.Kind == schema.CoreNone {
		t.Fatal("triangle should have a certificate")
	}
	if _, found := CyclicityCertificate(parse(t, u, "ab, bc")); found {
		t.Error("tree schema got a certificate")
	}
}

func TestSolveByJoinsSection6(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	sol, err := SolveByJoins(d, x)
	if err != nil {
		t.Fatal(err)
	}
	if sol.CC.Len() != 3 {
		t.Errorf("CC size = %d", sol.CC.Len())
	}
	if len(sol.Irrelevant) != 3 {
		t.Errorf("irrelevant = %v", sol.Irrelevant)
	}
	if len(sol.Sources) != 3 {
		t.Errorf("sources = %v", sol.Sources)
	}
	// Errors.
	u.Attr("z")
	if _, err := SolveByJoins(d, u.Set("z")); err == nil {
		t.Error("X ⊄ U(D) accepted")
	}
}

func TestSufficientSubschema(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	ok, err := SufficientSubschema(d, parse(t, u, "abg, bcg, acf"), x)
	if err != nil || !ok {
		t.Errorf("(abg,bcg,acf) should suffice: %v %v", ok, err)
	}
	ok, err = SufficientSubschema(d, parse(t, u, "abg, bcg"), x)
	if err != nil || ok {
		t.Errorf("(abg,bcg) should not suffice: %v %v", ok, err)
	}
	if _, err := SufficientSubschema(d, parse(t, u, "zz"), x); err == nil {
		t.Error("D′ ⊀ D accepted")
	}
}

func TestLosslessJoinReport(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	rep, err := LosslessJoin(d, parse(t, u, "ab, bc"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds || !rep.SubtreeApplicable || rep.Subtree {
		t.Errorf("§5.1 report wrong: %+v", rep)
	}
	rep2, err := LosslessJoin(d, parse(t, u, "abc, bc"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Holds || !rep2.Subtree {
		t.Errorf("(abc, bc) should be lossless: %+v", rep2)
	}
	if _, err := LosslessJoin(d, parse(t, u, "xy")); err == nil {
		t.Error("D′ ⊀ D accepted")
	}
}

// TestAnalyzeProgram: Theorem 6.2/6.4 on the §6 example. A CC plan's
// P(D) admits a tree projection wrt CC ∪ (X); a useless program's
// P(D) does not.
func TestAnalyzeProgram(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	sol, err := SolveByJoins(d, x)
	if err != nil {
		t.Fatal(err)
	}
	an, err := AnalyzeProgram(sol.Plan, x)
	if err != nil {
		t.Fatal(err)
	}
	if !an.TPWrtCC.Found {
		t.Error("solving program should admit a tree projection wrt CC ∪ (X) (Theorem 6.4)")
	}
	if an.SemijoinBudget != 2*an.CC.Len() {
		t.Error("budget wrong")
	}

	// A do-nothing program (projects R0 onto itself): no tree
	// projection wrt CC ∪ (X) exists, certifying it cannot solve the
	// query.
	lazy := program.NewProgram(d)
	lazy.Stmts = append(lazy.Stmts, program.Stmt{Kind: program.Project, Left: 0, Proj: d.Rels[0].Clone()})
	an2, err := AnalyzeProgram(lazy, x)
	if err != nil {
		t.Fatal(err)
	}
	if an2.TPWrtCC.Found {
		t.Errorf("lazy program should not admit a tree projection, got %s", an2.TPWrtCC.TP)
	}
	// Errors.
	u.Attr("z")
	if _, err := AnalyzeProgram(sol.Plan, u.Set("z")); err == nil {
		t.Error("bad target accepted")
	}
}

// TestTheorem62EndToEnd: when a program's P(D) admits a tree projection
// wrt CC ∪ (X), augmenting with semijoins solves the query — exercised
// via Yannakakis on the tree projection's schema. Here we verify the
// concrete UR-database consequence: the CC plan solves (already shown)
// and the analysis certifies it.
func TestTheorem62EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		d := gen.TreeSchema(rng, 2+rng.Intn(4), 2, 2)
		x := gen.RandomAttrSubset(rng, d.Attrs(), 0.4)
		if x.IsEmpty() {
			x = schema.NewAttrSet(d.Attrs().Min())
		}
		plan, err := TreePlan(d, x)
		if err != nil {
			t.Fatal(err)
		}
		an, err := AnalyzeProgram(plan, x)
		if err != nil {
			t.Fatal(err)
		}
		if !an.TPWrtD.Found || !an.TPWrtCC.Found {
			t.Fatalf("Yannakakis program lacks a tree projection on %s", d)
		}
		// And it really solves the query.
		i, _ := relation.RandomUniversal(d.U, d.Attrs(), 20, 3, rng)
		db := relation.URDatabase(d, i)
		got, _, err := plan.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(db.Eval(x)) {
			t.Fatal("TreePlan wrong")
		}
	}
}

func TestTreePlanCyclicError(t *testing.T) {
	u := schema.NewUniverse()
	ring := parse(t, u, "ab, bc, ca")
	if _, err := TreePlan(ring, u.Set("a")); err == nil {
		t.Error("cyclic schema accepted by TreePlan")
	}
	// Error message should mention the Corollary 3.2 suggestion.
	_, err := TreePlan(ring, u.Set("a"))
	if err == nil || len(err.Error()) == 0 {
		t.Error("unhelpful error")
	}
}

// TestClassifyAgreesWithQualgraph on random schemas.
func TestClassifyAgreesWithQualgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 60; trial++ {
		d := gen.RandomSchema(rng, 1+rng.Intn(5), 2+rng.Intn(4), 0.5)
		c, err := Classify(d)
		if err != nil {
			t.Fatal(err)
		}
		_, ok := qualgraph.QualTree(d)
		if c.Tree != ok {
			t.Fatalf("Classify disagreement on %s", d)
		}
	}
}

func TestPrepareMatchesPlan(t *testing.T) {
	for _, tc := range []struct{ schema, x string }{
		{"ab, bc, cd, de", "ae"},             // tree
		{"abg, bcg, acf, ad, de, ea", "abc"}, // cyclic §6
	} {
		u := schema.NewUniverse()
		d := parse(t, u, tc.schema)
		x := schema.MustSet(u, tc.x)
		cls, prog, err := Prepare(d, x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Plan(d, x)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		i, _ := relation.RandomUniversal(u, d.Attrs(), 50, 5, rng)
		db := relation.URDatabase(d, i)
		got, _, err := prog.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		ref, _, err := want.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Errorf("%s: Prepare program disagrees with Plan program", tc.schema)
		}
		wantCls, err := Classify(d)
		if err != nil {
			t.Fatal(err)
		}
		if cls.Tree != wantCls.Tree || cls.GammaAcyclic != wantCls.GammaAcyclic {
			t.Errorf("%s: Prepare classification disagrees with Classify", tc.schema)
		}
	}
}

func TestPrepareBadTarget(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, bc")
	if _, _, err := Prepare(d, u.Set("z")); err == nil {
		t.Error("Prepare accepted a target outside U(D)")
	}
}
