// Package gamma implements γ-acyclicity (paper §5.2): Fagin's weak
// γ-cycles, the paper's new polynomial characterization via
// intersection-deletion disconnection (Theorem 5.3(ii)), and the
// subtree-closure characterization (Theorem 5.3(iii)).
//
// γ-acyclic schemas are exactly those for which ⋈D ⊨ ⋈D′ holds for
// every connected D′ ⊆ D (Fagin's theorem, re-derived as Corollary 5.3).
package gamma

import (
	"gyokit/internal/gyo"
	"gyokit/internal/qualgraph"
	"gyokit/internal/schema"
)

// Cycle is a weak γ-cycle (R₁, A₁, R₂, A₂, …, Rₘ, Aₘ, R₁): Rels lists
// relation indexes, Attrs the linking attributes (Attrs[i] ∈
// Rels[i] ∩ Rels[i+1 mod m]).
type Cycle struct {
	Rels  []int
	Attrs []schema.Attr
}

// FindWeakCycle searches for a weak γ-cycle in d: m ≥ 3 distinct
// relations R₁…Rₘ, distinct attributes Aᵢ ∈ Rᵢ ∩ Rᵢ₊₁, where A₁ occurs
// in no relation of the cycle other than R₁ and R₂, and A₂ in none
// other than R₂ and R₃. (The exclusivity conditions are relative to
// the cycle's relations — the reading used by the paper's proof of
// Theorem 5.3(ii) ⇒ (i), which derives "Aᵢ ∉ Rⱼ" only for the cycle's
// Rⱼ. Requiring exclusivity in all of D would break the (i) ⇔ (ii)
// equivalence, e.g. on (ab, abc, acd, ce).) The search is exponential;
// intended for |D| ≲ 10.
func FindWeakCycle(d *schema.Schema) (*Cycle, bool) {
	n := len(d.Rels)
	for r1 := 0; r1 < n; r1++ {
		for r2 := 0; r2 < n; r2++ {
			if r2 == r1 {
				continue
			}
			var c *Cycle
			d.Rels[r1].Intersect(d.Rels[r2]).ForEach(func(a1 schema.Attr) bool {
				d.Rels[r2].ForEach(func(a2 schema.Attr) bool {
					if a2 == a1 {
						return true
					}
					for r3 := 0; r3 < n; r3++ {
						if r3 == r1 || r3 == r2 {
							continue
						}
						// A2 ∈ R2 ∩ R3; cycle-relative exclusivity so
						// far: A1 ∉ R3, A2 ∉ R1.
						if !d.Rels[r3].Has(a2) || d.Rels[r3].Has(a1) || d.Rels[r1].Has(a2) {
							continue
						}
						used := map[int]bool{r1: true, r2: true, r3: true}
						usedA := map[schema.Attr]bool{a1: true, a2: true}
						if cyc := extend(d, r1, r3, a1, a2,
							[]int{r1, r2, r3}, []schema.Attr{a1, a2}, used, usedA); cyc != nil {
							c = cyc
							return false
						}
					}
					return true
				})
				return c == nil
			})
			if c != nil {
				return c, true
			}
		}
	}
	return nil, false
}

// extend grows the path …→last, trying to close back to start with a
// fresh attribute, or to extend by a fresh (attribute, relation) pair.
// Every relation added beyond R₃ must avoid a1 and a2 to preserve the
// cycle-relative exclusivity of A₁ and A₂.
func extend(d *schema.Schema, start, last int, a1, a2 schema.Attr, rels []int, attrs []schema.Attr, used map[int]bool, usedA map[schema.Attr]bool) *Cycle {
	// Close the cycle: need Am ∈ R_last ∩ R_start, distinct from used attrs.
	closing := d.Rels[last].Intersect(d.Rels[start])
	var found *Cycle
	closing.ForEach(func(a schema.Attr) bool {
		if usedA[a] {
			return true
		}
		found = &Cycle{
			Rels:  append([]int(nil), rels...),
			Attrs: append(append([]schema.Attr(nil), attrs...), a),
		}
		return false
	})
	if found != nil {
		return found
	}
	// Extend: pick a fresh attribute shared with a fresh relation that
	// contains neither A1 nor A2.
	for next := 0; next < len(d.Rels); next++ {
		if used[next] || d.Rels[next].Has(a1) || d.Rels[next].Has(a2) {
			continue
		}
		shared := d.Rels[last].Intersect(d.Rels[next])
		var res *Cycle
		shared.ForEach(func(a schema.Attr) bool {
			if usedA[a] {
				return true
			}
			used[next] = true
			usedA[a] = true
			res = extend(d, start, next, a1, a2,
				append(rels, next), append(attrs, a), used, usedA)
			delete(used, next)
			delete(usedA, a)
			return res == nil
		})
		if res != nil {
			return res
		}
	}
	return nil
}

// IsGammaAcyclicCycleSearch decides γ-acyclicity by weak-γ-cycle
// search (Fagin's definition (i) of Theorem 5.3). Exponential.
func IsGammaAcyclicCycleSearch(d *schema.Schema) bool {
	_, found := FindWeakCycle(d)
	return !found
}

// IsGammaAcyclic decides γ-acyclicity with the paper's polynomial
// characterization, Theorem 5.3(ii): for every pair R₁, R₂ ∈ D with
// R₁ ∩ R₂ ≠ ∅, deleting the attributes R₁ ∩ R₂ from every relation
// schema must disconnect R₁ − X from R₂ − X. O(|D|³·|U|) overall.
func IsGammaAcyclic(d *schema.Schema) bool {
	n := len(d.Rels)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x := d.Rels[i].Intersect(d.Rels[j])
			if x.IsEmpty() {
				continue
			}
			if connectedAfterDeletion(d, i, j, x) {
				return false
			}
		}
	}
	return true
}

// connectedAfterDeletion reports whether relations i and j remain
// connected in (R − X | R ∈ D). Empty residues are never connected.
func connectedAfterDeletion(d *schema.Schema, i, j int, x schema.AttrSet) bool {
	e := d.DeleteAttrs(x)
	if e.Rels[i].IsEmpty() || e.Rels[j].IsEmpty() {
		return false
	}
	if i == j {
		return true
	}
	for _, comp := range e.Components() {
		hasI, hasJ := false, false
		for _, k := range comp {
			if k == i {
				hasI = true
			}
			if k == j {
				hasJ = true
			}
		}
		if hasI && hasJ {
			return true
		}
		if hasI || hasJ {
			return false
		}
	}
	return false
}

// IsGammaAcyclicSubtree decides γ-acyclicity via Theorem 5.3(iii): D is
// a tree schema and every connected D′ ⊆ D is a subtree of D. The
// connected-subset enumeration is exponential; intended for |D| ≲ 15.
func IsGammaAcyclicSubtree(d *schema.Schema) bool {
	if !gyo.IsTree(d) {
		return false
	}
	n := len(d.Rels)
	for mask := 1; mask < 1<<n; mask++ {
		var idx []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				idx = append(idx, i)
			}
		}
		sub := d.Restrict(idx)
		if !sub.Connected() {
			continue
		}
		if !qualgraph.IsSubtree(d, sub) {
			return false
		}
	}
	return true
}
