package gamma

import (
	"math/rand"
	"testing"

	"gyokit/internal/gen"
	"gyokit/internal/gyo"
	"gyokit/internal/lossless"
	"gyokit/internal/schema"
	"gyokit/internal/tableau"
)

func parse(t *testing.T, u *schema.Universe, s string) *schema.Schema {
	t.Helper()
	d, err := schema.Parse(u, s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBasicExamples(t *testing.T) {
	u := schema.NewUniverse()
	cases := []struct {
		s     string
		gamma bool
	}{
		{"ab, bc, cd", true},          // chain
		{"ab, ac, ad", true},          // star
		{"abc", true},                 // single relation
		{"ab, cd", true},              // disconnected
		{"ab, bc, ac", false},         // triangle (cyclic ⇒ not γ-acyclic)
		{"abc, ab, bc", false},        // the §5.1 example: α-acyclic but NOT γ-acyclic
		{"abc, cde, ace, afe", false}, /* tree schema, but ace–cde–abc has a weak γ-cycle? checked below */
	}
	for _, c := range cases {
		d := parse(t, u, c.s)
		if got := IsGammaAcyclic(d); got != c.gamma {
			t.Errorf("IsGammaAcyclic(%s) = %v, want %v", c.s, got, c.gamma)
		}
	}
}

// TestSection51ExampleIsAlphaNotGamma: the paper's example
// D = (abc, ab, bc) is a tree (α-acyclic) schema that is not γ-acyclic:
// the connected D′ = (ab, bc) is not a subtree (Theorem 5.3(iii) fails).
func TestSection51ExampleIsAlphaNotGamma(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "abc, ab, bc")
	if !gyo.IsTree(d) {
		t.Fatal("(abc, ab, bc) should be a tree schema")
	}
	if IsGammaAcyclic(d) {
		t.Error("(abc, ab, bc) should not be γ-acyclic")
	}
	if IsGammaAcyclicSubtree(d) {
		t.Error("subtree-closure route should also reject it")
	}
}

// TestCharacterizationsAgree: Theorem 5.3's three characterizations
// (weak-γ-cycle freedom, intersection-deletion disconnection, subtree
// closure) agree on random schemas.
func TestCharacterizationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		var d *schema.Schema
		switch trial % 3 {
		case 0:
			d = gen.RandomSchema(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.5)
		case 1:
			d = gen.TreeSchema(rng, 2+rng.Intn(4), 2, 2)
		default:
			d = gen.RandomSchema(rng, 2+rng.Intn(3), 3+rng.Intn(3), 0.3)
		}
		a := IsGammaAcyclic(d)
		b := IsGammaAcyclicCycleSearch(d)
		c := IsGammaAcyclicSubtree(d)
		if a != b || b != c {
			cyc, _ := FindWeakCycle(d)
			t.Fatalf("characterizations disagree on %s: deletion=%v cycle-search=%v subtree=%v (cycle=%v)",
				d, a, b, c, cyc)
		}
	}
}

// TestGammaImpliesAlpha: γ-acyclic ⇒ tree schema (Theorem 5.3(iii)).
func TestGammaImpliesAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 100; trial++ {
		d := gen.RandomSchema(rng, 2+rng.Intn(4), 2+rng.Intn(4), 0.5)
		if IsGammaAcyclic(d) && !gyo.IsTree(d) {
			t.Fatalf("γ-acyclic cyclic schema?! %s", d)
		}
	}
}

func TestWeakCycleWitnessIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	found := 0
	for trial := 0; trial < 200 && found < 40; trial++ {
		d := gen.RandomSchema(rng, 3+rng.Intn(3), 3+rng.Intn(3), 0.4)
		cyc, ok := FindWeakCycle(d)
		if !ok {
			continue
		}
		found++
		m := len(cyc.Rels)
		if m < 3 || len(cyc.Attrs) != m {
			t.Fatalf("malformed cycle %v for %s", cyc, d)
		}
		seenR := map[int]bool{}
		seenA := map[schema.Attr]bool{}
		for i := 0; i < m; i++ {
			if seenR[cyc.Rels[i]] || seenA[cyc.Attrs[i]] {
				t.Fatalf("repeated relation or attribute in cycle %v", cyc)
			}
			seenR[cyc.Rels[i]] = true
			seenA[cyc.Attrs[i]] = true
			ri, rj := cyc.Rels[i], cyc.Rels[(i+1)%m]
			if !d.Rels[ri].Has(cyc.Attrs[i]) || !d.Rels[rj].Has(cyc.Attrs[i]) {
				t.Fatalf("attr %d not shared by consecutive relations in %v", cyc.Attrs[i], cyc)
			}
		}
		// Cycle-relative exclusivity of A1 (only in R1, R2) and A2
		// (only in R2, R3).
		for i := 2; i < m; i++ {
			if d.Rels[cyc.Rels[i]].Has(cyc.Attrs[0]) {
				t.Fatalf("A1 leaks into cycle relation %d: %v on %s", cyc.Rels[i], cyc, d)
			}
		}
		for i := 0; i < m; i++ {
			if i == 1 || i == 2 {
				continue
			}
			if d.Rels[cyc.Rels[i]].Has(cyc.Attrs[1]) {
				t.Fatalf("A2 leaks into cycle relation %d: %v on %s", cyc.Rels[i], cyc, d)
			}
		}
	}
	if found < 10 {
		t.Fatalf("too few cycles exercised: %d", found)
	}
}

// TestCorollary53 verifies the Corollary 5.3 equivalences on small
// schemas: γ-acyclic ⇔ ∀ connected D′ ⊆ D: GR(D,∪D′) ⊆ D′
// ⇔ ∀ connected D′ ⊆ D: CC(D,∪D′) ≤ D′ ⇔ ∀ connected D′ ⊆ D: ⋈D ⊨ ⋈D′.
func TestCorollary53(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		var d *schema.Schema
		if trial%2 == 0 {
			d = gen.RandomSchema(rng, 2+rng.Intn(3), 2+rng.Intn(4), 0.5)
		} else {
			d = gen.TreeSchema(rng, 2+rng.Intn(3), 2, 2)
		}
		n := len(d.Rels)
		gammaAc := IsGammaAcyclic(d)
		grAll, ccAll, jdAll := true, true, true
		for mask := 1; mask < 1<<n; mask++ {
			var idx []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					idx = append(idx, i)
				}
			}
			sub := d.Restrict(idx)
			if !sub.Connected() {
				continue
			}
			x := sub.Attrs()
			gr := gyo.Reduce(d, x).GR
			okGR := true
			for _, r := range gr.Rels {
				if !sub.Contains(r) {
					okGR = false
					break
				}
			}
			if !okGR {
				grAll = false
			}
			if !tableau.CC(d, x).LE(sub) {
				ccAll = false
			}
			if !lossless.Implies(d, sub) {
				jdAll = false
			}
		}
		if gammaAc != grAll || gammaAc != ccAll || gammaAc != jdAll {
			t.Fatalf("Corollary 5.3 failed on %s: γ=%v GR=%v CC=%v JD=%v",
				d, gammaAc, grAll, ccAll, jdAll)
		}
	}
}

// TestFig7Phenomenon: in Arings and Acliques, deleting R ∩ S never
// disconnects R − X from S − X (Figure 7's point), so Theorem 5.3(ii)
// correctly classifies them as not γ-acyclic.
func TestFig7Phenomenon(t *testing.T) {
	for n := 3; n <= 6; n++ {
		ring := gen.Ring(n)
		if IsGammaAcyclic(ring) {
			t.Errorf("Aring(%d) claimed γ-acyclic", n)
		}
		clique := gen.Clique(n)
		if IsGammaAcyclic(clique) {
			t.Errorf("Aclique(%d) claimed γ-acyclic", n)
		}
	}
	// Spot-check the disconnection predicate itself on the 4-ring:
	// R=ab, S=bc share b; after deleting b the residues a and c are
	// still connected through da and cd.
	d := gen.Ring(4)
	x := d.Rels[0].Intersect(d.Rels[1])
	if x.IsEmpty() {
		t.Fatal("adjacent ring relations should intersect")
	}
	if !connectedAfterDeletion(d, 0, 1, x) {
		t.Error("ring residues should remain connected (Fig. 7)")
	}
}

func TestConnectedAfterDeletionEdgeCases(t *testing.T) {
	u := schema.NewUniverse()
	d := parse(t, u, "ab, abc")
	// R0 ⊆ R1: residue of R0 is empty → never connected.
	x := d.Rels[0].Intersect(d.Rels[1])
	if connectedAfterDeletion(d, 0, 1, x) {
		t.Error("empty residue should disconnect")
	}
	// Same relation twice: connected to itself when residue nonempty.
	d2 := parse(t, u, "ab, ab")
	if !connectedAfterDeletion(d2, 0, 0, schema.AttrSet{}) {
		t.Error("a relation with nonempty residue is connected to itself")
	}
}
