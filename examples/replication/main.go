// The replication walkthrough: boot a leader gyod, attach a follower
// with -follow, watch it bootstrap and catch up, read from the replica
// while the leader ingests, then run the failover runbook — SIGKILL
// the leader, POST /v1/promote on the follower, and keep serving with
// zero acknowledged loss. Run it from the repository root:
//
//	go run ./examples/replication
//
// It builds the real gyod binary into a temp dir, drives it exactly
// the way the README's Replication section describes, and cleans up
// after itself.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replication example:", err)
		os.Exit(1)
	}
}

func run() error {
	work, err := os.MkdirTemp("", "gyod-replication-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "gyod")

	fmt.Println("== building gyod ==")
	if out, err := exec.Command("go", "build", "-o", bin, "gyokit/cmd/gyod").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}

	fmt.Println("== leader: durable gyod over (ab, bc, cd) ==")
	leader, err := start(bin, "-data", filepath.Join(work, "leader"), "-schema", "ab, bc, cd", "-tuples", "0")
	if err != nil {
		return err
	}
	defer leader.kill()
	if _, err := leader.post("/v1/load", `{"relations": [
		{"rel": "ab", "tuples": [[1,2],[3,4]]},
		{"rel": "bc", "tuples": [[2,7],[4,8]]},
		{"rel": "cd", "tuples": [[7,10],[8,11]]}]}`); err != nil {
		return err
	}
	fmt.Printf("  leader at %s, seeded via /v1/load\n", leader.base)

	fmt.Println("== follower: -follow bootstraps a snapshot, then tails the WAL ==")
	follower, err := start(bin, "-data", filepath.Join(work, "replica"), "-follow", leader.base)
	if err != nil {
		return err
	}
	defer follower.kill()
	st, err := follower.waitCaughtUp()
	if err != nil {
		return err
	}
	fmt.Printf("  GET /v1/replica/status → role=%s cursor=(%d,%d) lagBytes=%d connected=%v\n",
		st.Role, st.CursorSeg, st.CursorOff, st.LagBytes, st.Connected)

	fmt.Println("== reads are local; both sides answer identically ==")
	l, err := leader.post("/v1/solve", `{"x": "ad"}`)
	if err != nil {
		return err
	}
	f, err := follower.post("/v1/solve", `{"x": "ad"}`)
	if err != nil {
		return err
	}
	if !bytes.Equal(answer(l), answer(f)) {
		return fmt.Errorf("MISMATCH:\n leader   %s\n follower %s", l, f)
	}
	fmt.Printf("  POST /v1/solve (either) → %s\n", firstLine(f))

	fmt.Println("== writes on the replica are refused with a leader redirect ==")
	resp, err := http.Post(follower.base+"/v1/insert", "application/json",
		strings.NewReader(`{"rel": "ab", "tuples": [[90,91]]}`))
	if err != nil {
		return err
	}
	refusal, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("  POST /v1/insert → %d %s\n", resp.StatusCode, firstLine(bytes.TrimSpace(refusal)))

	fmt.Println("== streamed writes: ingest through the leader, lag returns to 0 ==")
	if _, err := leader.post("/v1/insert", `{"rel": "ab", "tuples": [[11,12],[13,14]]}`); err != nil {
		return err
	}
	if _, err := leader.post("/v1/delete", `{"rel": "ab", "tuples": [[3,4]]}`); err != nil {
		return err
	}
	want, err := leader.post("/v1/solve", `{"x": "ad"}`)
	if err != nil {
		return err
	}
	if _, err := follower.waitCaughtUp(); err != nil {
		return err
	}
	fmt.Println("  follower caught up (lagRecords=0 lagBytes=0 lagSeconds=0)")

	fmt.Println("== failover: kill -9 the leader, promote the follower ==")
	leader.kill()
	promoted, err := follower.post("/v1/promote", "")
	if err != nil {
		return err
	}
	fmt.Printf("  POST /v1/promote → %s\n", firstLine(promoted))

	got, err := follower.post("/v1/solve", `{"x": "ad"}`)
	if err != nil {
		return err
	}
	if !bytes.Equal(answer(want), answer(got)) {
		return fmt.Errorf("MISMATCH after promote:\n want %s\n got  %s", want, got)
	}
	fmt.Println("  identical to the leader's last acknowledged answer: nothing lost")
	if _, err := follower.post("/v1/insert", `{"rel": "ab", "tuples": [[21,22]]}`); err != nil {
		return err
	}
	fmt.Println("  POST /v1/insert → accepted: the promoted node takes writes")

	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
	}
	raw, err := follower.get("/v1/healthz")
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &health); err != nil {
		return err
	}
	fmt.Printf("  GET /v1/healthz → status=%s role=%s\n", health.Status, health.Role)
	fmt.Println("done. (a promoted directory refuses -follow on restart; to re-join")
	fmt.Println(" it as a replica of a new leader, wipe it and re-seed with -follow)")
	return nil
}

type gyod struct {
	cmd  *exec.Cmd
	base string
	done chan error
}

func start(bin string, args ...string) (*gyod, error) {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	g := &gyod{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(sc.Text()[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	go func() { g.done <- cmd.Wait() }()
	select {
	case addr := <-addrCh:
		g.base = "http://" + addr
		return g, nil
	case err := <-g.done:
		return nil, fmt.Errorf("gyod exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("timeout waiting for gyod")
	}
}

func (g *gyod) kill() {
	if g.cmd.ProcessState == nil {
		g.cmd.Process.Kill()
		<-g.done
	}
}

func (g *gyod) post(path, body string) ([]byte, error) {
	resp, err := http.Post(g.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s → %d: %s", path, resp.StatusCode, out)
	}
	return bytes.TrimSpace(out), nil
}

func (g *gyod) get(path string) ([]byte, error) {
	resp, err := http.Get(g.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return bytes.TrimSpace(out), nil
}

type status struct {
	Role      string `json:"role"`
	CursorSeg int64  `json:"cursorSeg"`
	CursorOff int64  `json:"cursorOff"`
	LagBytes  int64  `json:"lagBytes"`
	Connected bool   `json:"connected"`
	Diverged  bool   `json:"diverged"`
	LastError string `json:"lastError"`
}

func (g *gyod) waitCaughtUp() (status, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		raw, err := g.get("/v1/replica/status")
		if err != nil {
			return status{}, err
		}
		var st status
		if err := json.Unmarshal(raw, &st); err != nil {
			return status{}, err
		}
		if st.Diverged {
			return st, fmt.Errorf("replica diverged: %s", st.LastError)
		}
		if st.Connected && st.LagBytes == 0 {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("replica never caught up: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// answer strips the per-run fields from a /v1/solve reply — "stats"
// (elapsedNs) and the server-generated "requestId" — leaving only the
// result for comparison.
func answer(b []byte) []byte {
	if i := bytes.Index(b, []byte(`"stats"`)); i >= 0 {
		b = b[:i]
	}
	return requestIDRe.ReplaceAll(b, nil)
}

var requestIDRe = regexp.MustCompile(`"requestId":"[^"]*",?`)

// firstLine truncates long JSON for display.
func firstLine(b []byte) string {
	s := string(b)
	if len(s) > 120 {
		s = s[:120] + "…"
	}
	return s
}
