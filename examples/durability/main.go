// The durability walkthrough: boot gyod with a -data directory, ingest
// over HTTP, hard-kill the process (SIGKILL — no flush, no shutdown
// path), restart it on the same directory, and watch /solve return the
// same answer. Run it from the repository root:
//
//	go run ./examples/durability
//
// It builds the real gyod binary into a temp dir, drives it exactly
// the way the README's Durability section describes, and cleans up
// after itself.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "durability example:", err)
		os.Exit(1)
	}
}

func run() error {
	work, err := os.MkdirTemp("", "gyod-durability-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "gyod")
	dataDir := filepath.Join(work, "data")

	fmt.Println("== building gyod ==")
	if out, err := exec.Command("go", "build", "-o", bin, "gyokit/cmd/gyod").CombinedOutput(); err != nil {
		return fmt.Errorf("go build: %v\n%s", err, out)
	}

	fmt.Println("== boot 1: fresh store, empty database over (ab, bc, cd) ==")
	g, err := start(bin, "-data", dataDir, "-schema", "ab, bc, cd", "-tuples", "0")
	if err != nil {
		return err
	}
	defer g.kill()

	fmt.Println("== ingest: one atomic /load batch + an /insert + a /delete ==")
	for _, req := range []struct{ path, body string }{
		{"/load", `{"relations": [
			{"rel": "ab", "tuples": [[1,2],[3,4],[5,6]]},
			{"rel": "bc", "tuples": [[2,7],[4,8],[6,9]]},
			{"rel": "cd", "tuples": [[7,10],[8,11]]}]}`},
		{"/insert", `{"rel": "cd", "tuples": [[9,12]]}`},
		{"/delete", `{"rel": "ab", "tuples": [[5,6]]}`},
	} {
		out, err := g.post(req.path, req.body)
		if err != nil {
			return err
		}
		fmt.Printf("  POST %-8s → %s\n", req.path, firstLine(out))
	}
	before, err := g.post("/solve", `{"x": "ad"}`)
	if err != nil {
		return err
	}
	fmt.Printf("  POST /solve   → %s\n", firstLine(before))

	fmt.Println("== kill -9: no flush, no shutdown path ==")
	g.kill()

	fmt.Println("== boot 2: recover from checkpoint + WAL tail ==")
	// The tiny -ckptbytes makes background incremental checkpoints fire
	// promptly after the ingests below, so the walkthrough can watch
	// their chunk economics in /stats.
	g2, err := start(bin, "-data", dataDir, "-ckptbytes", "2048")
	if err != nil {
		return err
	}
	defer g2.kill()
	after, err := g2.post("/solve", `{"x": "ad"}`)
	if err != nil {
		return err
	}
	fmt.Printf("  POST /solve   → %s\n", firstLine(after))
	// Compare the result (not the stats, whose elapsedNs differs run to
	// run): everything before the "stats" key.
	if !bytes.Equal(resultPrefix(before), resultPrefix(after)) {
		return fmt.Errorf("MISMATCH: recovery changed the answer\n before %s\n after  %s", before, after)
	}
	fmt.Println("  identical to the pre-kill answer: every acknowledged mutation survived")

	stats, err := g2.get("/stats")
	if err != nil {
		return err
	}
	fmt.Printf("  GET  /stats   → %s\n", firstLine(stats))

	fmt.Println("== incremental checkpoints: fill an arena chunk (4096 rows) ==")
	// A bulk insert past relation.ChunkRows seals at least one immutable
	// chunk; the background checkpoint appends it to the chunk store
	// once.
	var big strings.Builder
	big.WriteString(`{"rel": "ab", "tuples": [`)
	for i := 0; i < 4600; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		fmt.Fprintf(&big, "[%d,%d]", 1000+i, 100000+i)
	}
	big.WriteString("]}")
	if _, err := g2.post("/insert", big.String()); err != nil {
		return err
	}
	d1, err := g2.durability(1)
	if err != nil {
		return err
	}
	fmt.Printf("  checkpoint 1: chunksWritten=%v chunksReused=%v chunkStoreBytes=%v\n",
		d1["chunksWritten"], d1["chunksReused"], d1["chunkStoreBytes"])

	fmt.Println("== a small delta: the next checkpoint reuses the durable chunk ==")
	var delta strings.Builder
	delta.WriteString(`{"rel": "ab", "tuples": [`)
	for i := 0; i < 300; i++ {
		if i > 0 {
			delta.WriteByte(',')
		}
		fmt.Fprintf(&delta, "[%d,%d]", 9000+i, 200000+i)
	}
	delta.WriteString("]}")
	if _, err := g2.post("/insert", delta.String()); err != nil {
		return err
	}
	d2, err := g2.durability(int(d1["checkpoints"].(float64)) + 1)
	if err != nil {
		return err
	}
	fmt.Printf("  checkpoint 2: chunksWritten=%v chunksReused=%v checkpointBytes=%v\n",
		d2["chunksWritten"], d2["chunksReused"], d2["checkpointBytes"])
	fmt.Println("  (written did not grow with database size — the checkpoint cost O(dirty))")

	fmt.Println("== SIGTERM: drain, final checkpoint, flush, exit 0 ==")
	if err := g2.terminate(); err != nil {
		return err
	}
	fmt.Println("done.")
	return nil
}

type gyod struct {
	cmd  *exec.Cmd
	base string
	done chan error
}

func start(bin string, args ...string) (*gyod, error) {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	g := &gyod{cmd: cmd, done: make(chan error, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(sc.Text()[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	go func() { g.done <- cmd.Wait() }()
	select {
	case addr := <-addrCh:
		g.base = "http://" + addr
		return g, nil
	case err := <-g.done:
		return nil, fmt.Errorf("gyod exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("timeout waiting for gyod")
	}
}

func (g *gyod) kill() {
	if g.cmd.ProcessState == nil {
		g.cmd.Process.Kill()
		<-g.done
	}
}

func (g *gyod) terminate() error {
	if err := g.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-g.done:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("timeout waiting for graceful shutdown")
	}
}

func (g *gyod) post(path, body string) ([]byte, error) {
	resp, err := http.Post(g.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s → %d: %s", path, resp.StatusCode, out)
	}
	return bytes.TrimSpace(out), nil
}

// durability polls /stats until the store reports at least min
// completed checkpoints (they run in the background) and returns the
// durability section.
func (g *gyod) durability(min int) (map[string]any, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		raw, err := g.get("/stats")
		if err != nil {
			return nil, err
		}
		var st struct {
			Durability map[string]any `json:"durability"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return nil, err
		}
		if n, _ := st.Durability["checkpoints"].(float64); int(n) >= min {
			return st.Durability, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("no background checkpoint after 10s (durability = %v)", st.Durability)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (g *gyod) get(path string) ([]byte, error) {
	resp, err := http.Get(g.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return bytes.TrimSpace(out), nil
}

// resultPrefix strips the per-run fields from a /solve reply — the
// "stats" object (elapsedNs) and the server-generated "requestId" —
// leaving only the answer itself for the before/after comparison.
func resultPrefix(b []byte) []byte {
	if i := bytes.Index(b, []byte(`"stats"`)); i >= 0 {
		b = b[:i]
	}
	return requestIDRe.ReplaceAll(b, nil)
}

var requestIDRe = regexp.MustCompile(`"requestId":"[^"]*",?`)

// firstLine truncates long JSON for display.
func firstLine(b []byte) string {
	s := string(b)
	if len(s) > 120 {
		s = s[:120] + "…"
	}
	return s
}
