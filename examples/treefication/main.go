// Treefication: turning cyclic schemas into tree schemas (§4). The
// single-relation case is solved exactly by Corollary 3.2 (∪GR(D));
// the multi-relation case is NP-complete (Theorem 4.2) via bin
// packing, whose reduction this example demonstrates in both
// directions.
//
//	go run ./examples/treefication
package main

import (
	"fmt"
	"log"

	"gyokit"
	"gyokit/internal/gen"
	"gyokit/internal/treefy"
)

func main() {
	u := gyokit.NewUniverse()

	// Corollary 3.2: the cheapest single treefying relation.
	d := gyokit.MustParse(u, "ab, bc, ca, cd, de")
	fmt.Println("D =", d)
	fmt.Println("tree schema:", gyokit.IsTreeSchema(d))
	tf := gyokit.TreefyingRelation(d)
	fmt.Printf("∪GR(D) = %s — least-cardinality treefying relation (Corollary 3.2)\n", u.FormatSet(tf))
	aug := d.WithRel(tf)
	fmt.Printf("D ∪ (%s) tree: %v\n\n", u.FormatSet(tf), gyokit.IsTreeSchema(aug))

	// Theorem 4.2: fixed treefication ↔ bin packing. Build the
	// reduction image of a bin-packing instance and decide it.
	bp := gen.BinPackingInstance{Sizes: []int{5, 4, 3, 3}, K: 2, B: 8}
	fmt.Printf("bin packing: sizes=%v into K=%d bins of capacity B=%d\n", bp.Sizes, bp.K, bp.B)
	inst, err := treefy.FromBinPacking(bp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction image: %d Acliques, %d relations, %d attributes\n",
		len(bp.Sizes), inst.D.Len(), inst.D.Attrs().Card())

	witness, ok := treefy.Solve(inst)
	fmt.Println("treefiable with K relations of size ≤ B:", ok)
	if ok {
		fmt.Println("added relations (one per bin):")
		for _, s := range witness {
			fmt.Printf("  %s (size %d)\n", inst.D.U.FormatSet(s), s.Card())
		}
		check := inst.D.Clone()
		for _, s := range witness {
			check.Add(s)
		}
		fmt.Println("verified tree schema:", gyokit.IsTreeSchema(check))
	}

	// The unsatisfiable side: shrink the bins.
	bp2 := gen.BinPackingInstance{Sizes: []int{5, 4, 3, 3}, K: 2, B: 7}
	inst2, err := treefy.FromBinPacking(bp2)
	if err != nil {
		log.Fatal(err)
	}
	_, ok2 := treefy.Solve(inst2)
	fmt.Printf("\nwith B=7 instead: treefiable = %v (15 units cannot fit in 2×7)\n", ok2)

	// Heuristic vs exact on a larger packing.
	sizes := []int{9, 8, 7, 6, 5, 4, 3, 3, 3, 3}
	ffdBins, _ := treefy.FirstFitDecreasing(sizes, 12)
	opt := 0
	for k := 1; ; k++ {
		if _, ok := treefy.SolveBinPacking(gen.BinPackingInstance{Sizes: sizes, K: k, B: 12}); ok {
			opt = k
			break
		}
	}
	fmt.Printf("\nlarger packing %v, B=12: FFD uses %d bins, optimum is %d\n", sizes, ffdBins, opt)
}
