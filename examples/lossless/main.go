// Lossless joins and γ-acyclicity: the paper's §5 story. We test
// ⋈D ⊨ ⋈D′ three ways (canonical connection, tableau equivalence,
// subtree check), exhibit the §5.1 counterexample with a concrete
// two-tuple witness, and show what γ-acyclicity buys: every connected
// sub-schema of a γ-acyclic schema has a lossless join.
//
//	go run ./examples/lossless
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gyokit"
	"gyokit/internal/lossless"
	"gyokit/internal/schema"
)

func main() {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "abc, ab, bc")
	dp := gyokit.MustParse(u, "ab, bc")
	fmt.Printf("D = %s, D′ = %s\n\n", d, dp)

	rep, err := gyokit.LosslessJoin(d, dp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("⋈D ⊨ ⋈D′ (Theorem 5.1 via CC):", rep.Holds)
	fmt.Println("CC(D, ∪D′) =", rep.CC, "⊄ D′")
	fmt.Println("D′ subtree of D (Corollary 5.2):", rep.Subtree)

	// A concrete semantic witness: a universal relation satisfying ⋈D
	// but not ⋈D′.
	j, found := lossless.Falsify(d, dp, rand.New(rand.NewSource(1)), 200, 6, 2)
	if !found {
		log.Fatal("no witness found")
	}
	fmt.Println("\nwitness J (⊨ ⋈D, ⊭ ⋈(ab, bc)):")
	fmt.Println("  ", j)

	// Why it fails: joining π_ab(J) with π_bc(J) manufactures tuples
	// that J never had; the abc relation would have vetoed them.
	fmt.Println("\nIn contrast, every subtree has a lossless join:")
	for _, s := range []string{"abc, ab", "abc, bc", "abc, ab, bc"} {
		sub := gyokit.MustParse(u, s)
		r, err := gyokit.LosslessJoin(d, sub)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ⋈D ⊨ ⋈%s: %v\n", sub, r.Holds)
	}

	// γ-acyclicity (§5.2): the schema above is a tree schema but NOT
	// γ-acyclic — exactly because (ab, bc) is connected yet lossy.
	fmt.Println("\nγ-acyclic(D):", gyokit.IsGammaAcyclic(d))

	// A γ-acyclic design: the star. Every connected sub-schema is
	// lossless (Corollary 5.3 / Fagin's theorem).
	star := gyokit.MustParse(u, "ea, eb, ec")
	fmt.Printf("\nstar %s: γ-acyclic = %v\n", star, gyokit.IsGammaAcyclic(star))
	n := star.Len()
	for mask := 1; mask < 1<<n; mask++ {
		var idx []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				idx = append(idx, i)
			}
		}
		sub := star.Restrict(idx)
		if !sub.Connected() {
			continue
		}
		r, err := gyokit.LosslessJoin(star, sub)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  connected %s lossless: %v\n", sub, r.Holds)
		if !r.Holds {
			log.Fatal("γ-acyclicity promise broken")
		}
	}

	// Bonus: the UJR property from §5.1's discussion — UR databases
	// over tree schemas are always ultra-join-reduced.
	chain := gyokit.MustParse(schema.NewUniverse(), "ab, bc, cd")
	db := gyokit.RandomURDatabase(chain, 15, 3, 7)
	fmt.Printf("\nUR database over %s is UJR: %v\n", chain, lossless.IsUJR(db))
}
