// Query planning over a universal-relation database: the paper's §6
// worked example, end to end. We compute CC(D, abc), watch it discard
// the irrelevant relations ad, de, ea and the f column, and compare
// three plans on a synthetic UR database: the naive full join, the
// CC-pruned join (Corollary 4.1), and a semijoin program (§6).
//
//	go run ./examples/queryplanning
package main

import (
	"fmt"
	"log"

	"gyokit"
	"gyokit/internal/program"
	"gyokit/internal/tableau"
)

func main() {
	u := gyokit.NewUniverse()
	d := gyokit.MustParse(u, "abg, bcg, acf, ad, de, ea")
	x := u.Set("a", "b", "c")
	fmt.Println("D =", d)
	fmt.Println("Q = (D, abc)")

	// Canonical connection: the §4 pruning certificate.
	sol, err := gyokit.SolveByJoins(d, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCC(D, abc) =", sol.CC)
	fmt.Print("irrelevant relations:")
	for _, i := range sol.Irrelevant {
		fmt.Printf(" %s", u.FormatSet(d.Rels[i]))
	}
	fmt.Println("  (and column f is projected out of acf)")

	// A synthetic UR database: every relation is a projection of one
	// universal relation I.
	db := gyokit.RandomURDatabase(d, 200, 6, 1)

	naive, err := program.NaivePlan(d, x)
	if err != nil {
		log.Fatal(err)
	}
	ccPlan := sol.Plan

	nRes, nStats, err := naive.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	cRes, cStats, err := ccPlan.Eval(db)
	if err != nil {
		log.Fatal(err)
	}
	if !nRes.Equal(cRes) {
		log.Fatal("plans disagree — Theorem 4.1 violated?!")
	}

	fmt.Printf("\n%-22s %10s %12s %10s %12s\n", "plan", "answer", "max interm.", "tuples", "wall")
	fmt.Printf("%-22s %10d %12d %10d %12v\n", "naive 6-way join", nRes.Card(), nStats.MaxIntermediate, nStats.TuplesProduced, nStats.Elapsed)
	fmt.Printf("%-22s %10d %12d %10d %12v\n", "CC-pruned (Cor. 4.1)", cRes.Card(), cStats.MaxIntermediate, cStats.TuplesProduced, cStats.Elapsed)

	// The engine's per-statement cost accounting makes the pruning
	// visible statement by statement.
	fmt.Println("\nCC-pruned plan, statement by statement:")
	fmt.Print(cStats.Table())

	// §6 analysis: the CC plan's P(D) admits a tree projection wrt
	// CC ∪ (X) — the Theorem 6.2/6.4 certificate that joins plus a few
	// semijoins solve the query.
	an, err := gyokit.AnalyzeProgram(ccPlan, x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTheorem 6.2/6.4 certificate:")
	fmt.Println("  P(D) =", an.PD)
	fmt.Println("  tree projection wrt CC ∪ (X) found:", an.TPWrtCC.Found)
	if an.TPWrtCC.Found {
		fmt.Println("  witness D″ =", an.TPWrtCC.TP)
	}
	fmt.Println("  semijoin budget: ≤", an.SemijoinBudget)

	// The equivalence test of Corollary 4.2: is (D', abc) ≡ (D, abc)
	// for the pruned D'?
	dp := gyokit.MustParse(u, "abg, bcg, acf")
	fmt.Println("\n(D', abc) ≡ (D, abc) for D' = (abg, bcg, acf):",
		tableau.QueriesEquivalent(d, dp, x))
}
