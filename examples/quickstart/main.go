// Quickstart: parse a schema in the paper's notation, classify it,
// inspect its GYO reduction trace, and print a join tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gyokit"
	"gyokit/internal/gyo"
)

func main() {
	u := gyokit.NewUniverse()

	// Figure 1's third schema: a tree schema with a non-obvious qual tree.
	d := gyokit.MustParse(u, "abc, cde, ace, afe")
	fmt.Println("schema:", d)

	cls, err := gyokit.Classify(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree schema:", cls.Tree)
	fmt.Println("γ-acyclic:  ", cls.GammaAcyclic)

	// Watch the GYO reduction empty the schema (Corollary 3.1).
	res := gyokit.GYOReduce(d, gyokit.AttrSet{})
	fmt.Println("\nGYO reduction trace:")
	for i, op := range res.Trace {
		switch op.Kind {
		case gyo.AttrDelete:
			fmt.Printf("  %d. delete isolated attribute %s from R%d\n", i+1, u.Name(op.Attr), op.Rel)
		case gyo.SubsetEliminate:
			fmt.Printf("  %d. eliminate R%d, now contained in R%d\n", i+1, op.Rel, op.Into)
		}
	}
	fmt.Println("GR(D) empty:", res.Empty())

	// A qual tree realizes the tree structure (Figure 1 exhibits
	// abc—ace—afe with cde attached at ace).
	fmt.Println("\nqual tree:")
	for _, e := range cls.QualTree.Edges() {
		fmt.Printf("  %s — %s\n", u.FormatSet(d.Rels[e[0]]), u.FormatSet(d.Rels[e[1]]))
	}

	// Contrast with a cyclic schema: GYO gets stuck and Corollary 3.2
	// names the cheapest fix.
	ring := gyokit.MustParse(u, "ab, bc, cd, da")
	cls2, err := gyokit.Classify(ring)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: tree=%v; add %s to treefy (Corollary 3.2)\n",
		ring, cls2.Tree, u.FormatSet(cls2.TreefyingRelation))
}
