// Quickstart: parse a schema in the paper's notation, classify it,
// inspect its GYO reduction trace, and print a join tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gyokit"
	"gyokit/internal/gyo"
	"gyokit/internal/program"
)

func main() {
	u := gyokit.NewUniverse()

	// Figure 1's third schema: a tree schema with a non-obvious qual tree.
	d := gyokit.MustParse(u, "abc, cde, ace, afe")
	fmt.Println("schema:", d)

	cls, err := gyokit.Classify(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree schema:", cls.Tree)
	fmt.Println("γ-acyclic:  ", cls.GammaAcyclic)

	// Watch the GYO reduction empty the schema (Corollary 3.1).
	res := gyokit.GYOReduce(d, gyokit.AttrSet{})
	fmt.Println("\nGYO reduction trace:")
	for i, op := range res.Trace {
		switch op.Kind {
		case gyo.AttrDelete:
			fmt.Printf("  %d. delete isolated attribute %s from R%d\n", i+1, u.Name(op.Attr), op.Rel)
		case gyo.SubsetEliminate:
			fmt.Printf("  %d. eliminate R%d, now contained in R%d\n", i+1, op.Rel, op.Into)
		}
	}
	fmt.Println("GR(D) empty:", res.Empty())

	// A qual tree realizes the tree structure (Figure 1 exhibits
	// abc—ace—afe with cde attached at ace).
	fmt.Println("\nqual tree:")
	for _, e := range cls.QualTree.Edges() {
		fmt.Printf("  %s — %s\n", u.FormatSet(d.Rels[e[0]]), u.FormatSet(d.Rels[e[1]]))
	}

	// Contrast with a cyclic schema: GYO gets stuck and Corollary 3.2
	// names the cheapest fix.
	ring := gyokit.MustParse(u, "ab, bc, cd, da")
	cls2, err := gyokit.Classify(ring)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: tree=%v; add %s to treefy (Corollary 3.2)\n",
		ring, cls2.Tree, u.FormatSet(cls2.TreefyingRelation))

	// Evaluate a query and trace it: SpanTree turns a run's stats into
	// one span per executed statement, nested by data flow. Over HTTP
	// the same tree comes back from POST /solve with "trace": true.
	e := gyokit.NewEngine(gyokit.EngineOptions{})
	e.Swap(gyokit.RandomURDatabase(d, 200, 8, 1))
	x := u.Set("a", "f")
	sol, st, err := e.Solve(d, x)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := e.Plan(d, x)
	if err != nil {
		log.Fatal(err)
	}
	root, err := pl.Prog.SpanTree(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace of [%s] (%d tuples, %v):\n", u.FormatSet(x), sol.Card(), st.Elapsed)
	printSpan(root, "  ")

	// The same question as a conjunctive query. Predicates address stored
	// relations by attribute set (abc → attributes a, b, c), the head
	// names the output variables, and the compiler classifies the
	// hypergraph: here the head {A, F} sits inside the afe atom, so the
	// query is free-connex and the Yannakakis plan roots there, keeping
	// every intermediate within atom width. Over HTTP the same text goes
	// to POST /v1/query.
	const text = "ans(A, F) :- abc(A, B, C), cde(C, D, E), ace(A, C, E), afe(A, F, E)."
	cc, err := gyokit.CompileCQ(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconjunctive query: %s\n  kind: %s (reduction rooted at %s)\n",
		cc.Canonical, cc.Kind, cc.Atoms[cc.Root].Pred)

	qpl, err := e.PrepareQuery(text)
	if err != nil {
		log.Fatal(err)
	}
	qout, _, err := e.SolveQuery(qpl, 1, program.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  answer: %d tuples (attribute-set solve agrees: %v)\n",
		qout.Card(), qout.Card() == sol.Card())

	// Evaluation runs on rails: a gas budget (total tuples produced) and
	// a deadline, both checked at statement boundaries. A tripped rail
	// returns a typed error and no partial state — gyod exposes them as
	// -gas and -querytimeout.
	if _, _, err := e.SolveQuery(qpl, 1, program.Limits{MaxTuples: 1}); err != nil {
		fmt.Printf("  under a 1-tuple gas budget: %v\n", err)
	}
}

func printSpan(s *program.Span, indent string) {
	fmt.Printf("%s#%d %s %s: %d→%d (%v)\n",
		indent, s.ID, s.Op, s.Rel, s.InLeft, s.Out, time.Duration(s.ElapsedNs))
	for _, c := range s.Children {
		printSpan(c, indent+"  ")
	}
}
