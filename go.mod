module gyokit

go 1.23
