module gyokit

go 1.24
